// TAGE-SC-L conditional predictor (Seznec [67]), parameterized for the
// paper's 8KB and 64KB configurations. Structure:
//   * bimodal base table (the "base directional predictor" that reuse-based
//     attacks like BranchScope/BlueThunder target — paper §VI-A2);
//   * N partially-tagged tables indexed by geometrically growing global
//     history lengths, 3-bit prediction counters, 2-bit useful counters;
//   * a loop predictor (L) capturing constant trip counts;
//   * a lightweight GEHL-style statistical corrector (SC).
// All index/tag computation goes through the mapping type (Rt under
// STBPU — Table II: 10-bit index/8-bit tag for 8KB, 13/12 for 64KB), so the
// secured variant differs only in data representation.
//
// Template over the mapping: with a concrete final mapping class every
// per-table Rt index/tag computation inlines into the table walk — the
// per-branch hot loop that dominates TAGE simulation cost.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string_view>
#include <vector>

#include "bpu/direction.h"
#include "bpu/mapping.h"
#include "bpu/types.h"
#include "util/bits.h"
#include "util/rng.h"
#include "util/saturating_counter.h"

namespace stbpu::tage {

struct TageConfig {
  std::string_view name = "TAGE_SC_L_64KB";
  unsigned num_tables = 10;    ///< tagged tables
  unsigned index_bits = 13;    ///< per-table entries = 2^index_bits
  unsigned tag_bits = 12;
  unsigned min_history = 4;
  unsigned max_history = 256;
  unsigned bimodal_bits = 13;  ///< base table entries = 2^bimodal_bits
  bool use_loop_predictor = true;
  bool use_statistical_corrector = true;

  [[nodiscard]] static TageConfig kb64() { return {}; }
  [[nodiscard]] static TageConfig kb8() {
    return {.name = "TAGE_SC_L_8KB",
            .num_tables = 6,
            .index_bits = 10,
            .tag_bits = 8,
            .min_history = 4,
            .max_history = 64,
            .bimodal_bits = 12,
            .use_loop_predictor = true,
            .use_statistical_corrector = true};
  }
};

namespace detail {
inline constexpr int kScThreshold = 8;        // SC override confidence
inline constexpr std::uint32_t kTickPeriod = 1u << 18;  // useful-counter decay period
}  // namespace detail

template <class Mapping = bpu::MappingProvider>
class TagePredictorT final : public bpu::IDirectionPredictor {
 public:
  TagePredictorT(const TageConfig& cfg, const Mapping* mapping,
                 std::uint64_t seed = 0x7A6E);

  [[nodiscard]] bpu::DirPrediction predict(std::uint64_t ip,
                                           const bpu::ExecContext& ctx) override;
  void update(std::uint64_t ip, const bpu::ExecContext& ctx, bool taken,
              const bpu::DirPrediction& pred) override;
  void track(const bpu::BranchRecord& rec) override;
  void flush() override;
  void flush_hart(std::uint8_t hart) override;
  [[nodiscard]] std::string_view name() const override { return cfg_.name; }

  [[nodiscard]] const TageConfig& config() const noexcept { return cfg_; }

 private:
  struct TaggedEntry {
    util::SignedSaturatingCounter<3> ctr;
    std::uint32_t tag = 0;
    util::SaturatingCounter<2> useful{0};
    bool valid = false;
  };

  struct LoopEntry {
    std::uint32_t tag = 0;
    std::uint16_t past_iters = 0;     ///< learned trip count
    std::uint16_t current_iter = 0;
    util::SaturatingCounter<2> conf{0};
    bool valid = false;
  };

  /// Per-hart global history with incrementally maintained folded values
  /// (standard TAGE circular-shift-register folding).
  struct Folded {
    std::uint32_t value = 0;
    unsigned comp_length = 0;  ///< folded width
    unsigned orig_length = 0;  ///< history length
    void update(const std::vector<std::uint8_t>& hist, unsigned head);
  };
  struct HartState {
    std::vector<std::uint8_t> history;  ///< circular buffer, newest at head
    unsigned head = 0;
    std::vector<Folded> folded_index;
    std::vector<Folded> folded_tag;
    std::uint64_t path = 0;
    void push(bool taken, unsigned max_hist);
  };

  struct TableMatch {
    int table = -1;  ///< -1: bimodal
    std::uint32_t index = 0;
    bool prediction = false;
    bool weak = false;
  };

  [[nodiscard]] std::uint64_t folded_for(const HartState& hs, unsigned table,
                                         bool for_tag) const;
  [[nodiscard]] std::uint32_t bimodal_index(std::uint64_t ip,
                                            const bpu::ExecContext& ctx) const;
  void find_matches(std::uint64_t ip, const bpu::ExecContext& ctx, TableMatch& provider,
                    TableMatch& alt);
  [[nodiscard]] bool loop_predict(std::uint64_t ip, const bpu::ExecContext& ctx,
                                  bool& valid) const;
  void loop_update(std::uint64_t ip, const bpu::ExecContext& ctx, bool taken);
  [[nodiscard]] int sc_sum(std::uint64_t ip, const bpu::ExecContext& ctx,
                           bool tage_pred) const;
  void sc_update(std::uint64_t ip, const bpu::ExecContext& ctx, bool taken,
                 bool tage_pred);

  TageConfig cfg_;
  const Mapping* mapping_;
  std::vector<unsigned> history_lengths_;
  std::vector<std::vector<TaggedEntry>> tables_;
  std::vector<util::SaturatingCounter<2>> bimodal_;
  std::vector<LoopEntry> loop_;
  // SC: bias table + two GEHL history tables of 6-bit signed counters.
  std::vector<util::SignedSaturatingCounter<6>> sc_bias_;
  std::array<std::vector<util::SignedSaturatingCounter<6>>, 2> sc_gehl_;
  util::SignedSaturatingCounter<4> use_alt_on_na_;
  HartState harts_[2];
  util::Xoshiro256 rng_;
  std::uint32_t tick_ = 0;

  // Transient state between predict() and update() for the same branch —
  // the simulator always pairs them, matching speculative update repair.
  struct Scratch {
    TableMatch provider, alt;
    bool tage_pred = false;
    bool loop_valid = false;
    bool loop_pred = false;
    bool sc_used = false;
    bool final_pred = false;
  } scratch_;
};

/// Legacy dynamic-dispatch instantiation (compiled once in tage.cc).
using TagePredictor = TagePredictorT<>;

// ---------------------------------------------------------------------------
// Implementation (template — shared verbatim by every instantiation).
// ---------------------------------------------------------------------------

template <class Mapping>
TagePredictorT<Mapping>::TagePredictorT(const TageConfig& cfg, const Mapping* mapping,
                                        std::uint64_t seed)
    : cfg_(cfg), mapping_(mapping), rng_(seed) {
  // Geometric history series L(i) = min * (max/min)^(i/(N-1)) (Seznec).
  history_lengths_.resize(cfg_.num_tables);
  for (unsigned i = 0; i < cfg_.num_tables; ++i) {
    const double frac = cfg_.num_tables == 1
                            ? 1.0
                            : static_cast<double>(i) / (cfg_.num_tables - 1);
    const double len = cfg_.min_history *
                       std::pow(static_cast<double>(cfg_.max_history) / cfg_.min_history, frac);
    history_lengths_[i] = std::max<unsigned>(cfg_.min_history,
                                             static_cast<unsigned>(len + 0.5));
    if (i > 0 && history_lengths_[i] <= history_lengths_[i - 1]) {
      history_lengths_[i] = history_lengths_[i - 1] + 1;
    }
  }

  tables_.assign(cfg_.num_tables,
                 std::vector<TaggedEntry>(std::size_t{1} << cfg_.index_bits));
  bimodal_.assign(std::size_t{1} << cfg_.bimodal_bits, util::SaturatingCounter<2>{});
  loop_.assign(64, LoopEntry{});
  sc_bias_.assign(1u << 11, util::SignedSaturatingCounter<6>{});
  for (auto& t : sc_gehl_) t.assign(1u << 10, util::SignedSaturatingCounter<6>{});

  const unsigned hist_buf = cfg_.max_history + 8;
  for (auto& hs : harts_) {
    hs.history.assign(hist_buf, 0);
    hs.head = 0;
    hs.folded_index.resize(cfg_.num_tables);
    hs.folded_tag.resize(cfg_.num_tables);
    for (unsigned t = 0; t < cfg_.num_tables; ++t) {
      hs.folded_index[t] = {.value = 0,
                            .comp_length = cfg_.index_bits,
                            .orig_length = history_lengths_[t]};
      hs.folded_tag[t] = {.value = 0,
                          .comp_length = cfg_.tag_bits,
                          .orig_length = history_lengths_[t]};
    }
  }
}

template <class Mapping>
void TagePredictorT<Mapping>::Folded::update(const std::vector<std::uint8_t>& hist,
                                             unsigned head) {
  // Canonical TAGE circular folding: shift in the newest bit, XOR out the
  // bit that leaves the history window.
  const unsigned size = static_cast<unsigned>(hist.size());
  const std::uint8_t newest = hist[head];
  const std::uint8_t outgoing = hist[(head + size - orig_length % size) % size];
  value = (value << 1) | newest;
  value ^= static_cast<std::uint32_t>(outgoing) << (orig_length % comp_length);
  value ^= value >> comp_length;
  value &= (1u << comp_length) - 1;
}

template <class Mapping>
void TagePredictorT<Mapping>::HartState::push(bool taken, unsigned /*max_hist*/) {
  head = (head + 1) % history.size();
  history[head] = taken ? 1 : 0;
}

template <class Mapping>
std::uint64_t TagePredictorT<Mapping>::folded_for(const HartState& hs, unsigned table,
                                                  bool for_tag) const {
  const std::uint32_t fi = hs.folded_index[table].value;
  const std::uint32_t ft = hs.folded_tag[table].value;
  // Pack both folds plus a path slice; the provider hashes everything.
  const std::uint64_t base =
      static_cast<std::uint64_t>(fi) | (static_cast<std::uint64_t>(ft) << 20) |
      (util::bits(hs.path, 0, 12) << 44);
  return for_tag ? (base ^ (base >> 7) ^ 0x5A5AULL) : base;
}

template <class Mapping>
std::uint32_t TagePredictorT<Mapping>::bimodal_index(std::uint64_t ip,
                                                     const bpu::ExecContext& ctx) const {
  // The base directional predictor is remapped through R3 under STBPU,
  // exactly like the baseline PHT (paper: attacks on the base predictor
  // drive the misprediction threshold).
  return mapping_->pht_index_1level(ip, ctx) & ((1u << cfg_.bimodal_bits) - 1);
}

template <class Mapping>
void TagePredictorT<Mapping>::find_matches(std::uint64_t ip, const bpu::ExecContext& ctx,
                                           TableMatch& provider, TableMatch& alt) {
  provider = {};
  alt = {};
  const HartState& hs = harts_[ctx.hart & 1];
  for (int t = static_cast<int>(cfg_.num_tables) - 1; t >= 0; --t) {
    const unsigned ut = static_cast<unsigned>(t);
    const std::uint32_t idx =
        mapping_->tage_index(ip, folded_for(hs, ut, false), ut, cfg_.index_bits, ctx);
    const std::uint32_t tag =
        mapping_->tage_tag(ip, folded_for(hs, ut, true), ut, cfg_.tag_bits, ctx);
    const TaggedEntry& e = tables_[ut][idx & ((1u << cfg_.index_bits) - 1)];
    if (e.valid && e.tag == tag) {
      const TableMatch m{.table = t,
                         .index = idx & ((1u << cfg_.index_bits) - 1),
                         .prediction = e.ctr.taken(),
                         .weak = e.ctr.value() == 0 || e.ctr.value() == -1};
      if (provider.table < 0) {
        provider = m;
      } else if (alt.table < 0) {
        alt = m;
        break;
      }
    }
  }
  if (provider.table < 0) {
    const std::uint32_t bi = bimodal_index(ip, ctx);
    provider = {.table = -1, .index = bi, .prediction = bimodal_[bi].taken(),
                .weak = !bimodal_[bi].is_saturated()};
  } else if (alt.table < 0) {
    const std::uint32_t bi = bimodal_index(ip, ctx);
    alt = {.table = -1, .index = bi, .prediction = bimodal_[bi].taken(),
           .weak = !bimodal_[bi].is_saturated()};
  }
}

template <class Mapping>
bool TagePredictorT<Mapping>::loop_predict(std::uint64_t ip, const bpu::ExecContext& ctx,
                                           bool& valid) const {
  valid = false;
  if (!cfg_.use_loop_predictor) return false;
  const std::uint32_t row = mapping_->perceptron_row(ip, 6, ctx) & 63;
  const std::uint32_t tag = mapping_->tage_tag(ip, 0, 63, 10, ctx);
  const LoopEntry& e = loop_[row];
  if (e.valid && e.tag == tag && e.past_iters > 0 && e.conf.raw() == 3) {
    valid = true;
    return e.current_iter != e.past_iters;  // taken until the trip end
  }
  return false;
}

template <class Mapping>
void TagePredictorT<Mapping>::loop_update(std::uint64_t ip, const bpu::ExecContext& ctx,
                                          bool taken) {
  if (!cfg_.use_loop_predictor) return;
  const std::uint32_t row = mapping_->perceptron_row(ip, 6, ctx) & 63;
  const std::uint32_t tag = mapping_->tage_tag(ip, 0, 63, 10, ctx);
  LoopEntry& e = loop_[row];
  if (!e.valid || e.tag != tag) {
    // Allocate on a not-taken outcome (potential loop exit) if the slot is
    // cold; never displace a confident entry.
    if (!taken && (!e.valid || e.conf.raw() == 0)) {
      e = LoopEntry{.tag = tag, .past_iters = 0, .current_iter = 0,
                    .conf = util::SaturatingCounter<2>{0}, .valid = true};
    }
    return;
  }
  if (taken) {
    ++e.current_iter;
    if (e.past_iters != 0 && e.current_iter > e.past_iters) {
      // Trip count changed — retrain.
      e.past_iters = 0;
      e.conf = util::SaturatingCounter<2>{0};
    }
  } else {
    if (e.past_iters == 0) {
      e.past_iters = e.current_iter;  // first full trip observed
    } else if (e.past_iters == e.current_iter) {
      e.conf.increment();
    } else {
      e.past_iters = e.current_iter;
      e.conf = util::SaturatingCounter<2>{0};
    }
    e.current_iter = 0;
  }
}

template <class Mapping>
int TagePredictorT<Mapping>::sc_sum(std::uint64_t ip, const bpu::ExecContext& ctx,
                                    bool tage_pred) const {
  const HartState& hs = harts_[ctx.hart & 1];
  const std::uint32_t bias_idx =
      ((mapping_->pht_index_1level(ip, ctx) << 1) | (tage_pred ? 1 : 0)) & ((1u << 11) - 1);
  const std::uint32_t g0 =
      (mapping_->perceptron_row(ip, 10, ctx) ^ hs.folded_index[0].value) & ((1u << 10) - 1);
  const std::uint32_t g1 =
      (mapping_->perceptron_row(ip, 10, ctx) ^
       (cfg_.num_tables > 2 ? hs.folded_index[2].value : hs.folded_index.back().value)) &
      ((1u << 10) - 1);
  int sum = 2 * sc_bias_[bias_idx].value() + 1;
  sum += 2 * sc_gehl_[0][g0].value() + 1;
  sum += 2 * sc_gehl_[1][g1].value() + 1;
  sum += tage_pred ? detail::kScThreshold / 2 : -detail::kScThreshold / 2;  // TAGE's vote
  return sum;
}

template <class Mapping>
void TagePredictorT<Mapping>::sc_update(std::uint64_t ip, const bpu::ExecContext& ctx,
                                        bool taken, bool tage_pred) {
  const HartState& hs = harts_[ctx.hart & 1];
  const std::uint32_t bias_idx =
      ((mapping_->pht_index_1level(ip, ctx) << 1) | (tage_pred ? 1 : 0)) & ((1u << 11) - 1);
  const std::uint32_t g0 =
      (mapping_->perceptron_row(ip, 10, ctx) ^ hs.folded_index[0].value) & ((1u << 10) - 1);
  const std::uint32_t g1 =
      (mapping_->perceptron_row(ip, 10, ctx) ^
       (cfg_.num_tables > 2 ? hs.folded_index[2].value : hs.folded_index.back().value)) &
      ((1u << 10) - 1);
  sc_bias_[bias_idx].update(taken);
  sc_gehl_[0][g0].update(taken);
  sc_gehl_[1][g1].update(taken);
}

template <class Mapping>
bpu::DirPrediction TagePredictorT<Mapping>::predict(std::uint64_t ip,
                                                    const bpu::ExecContext& ctx) {
  find_matches(ip, ctx, scratch_.provider, scratch_.alt);

  bool pred = scratch_.provider.prediction;
  // Newly allocated (weak, not yet useful) provider entries may be less
  // reliable than the alternate prediction (Seznec's use_alt_on_na).
  if (scratch_.provider.table >= 0 && scratch_.provider.weak &&
      use_alt_on_na_.taken()) {
    pred = scratch_.alt.prediction;
  }
  scratch_.tage_pred = pred;

  scratch_.loop_pred = loop_predict(ip, ctx, scratch_.loop_valid);
  if (scratch_.loop_valid) pred = scratch_.loop_pred;

  scratch_.sc_used = false;
  if (cfg_.use_statistical_corrector) {
    const int sum = sc_sum(ip, ctx, pred);
    if ((sum >= 0) != pred && std::abs(sum) >= detail::kScThreshold) {
      pred = sum >= 0;
      scratch_.sc_used = true;
    }
  }
  scratch_.final_pred = pred;
  return {.taken = pred, .from_tagged = scratch_.provider.table >= 0};
}

template <class Mapping>
void TagePredictorT<Mapping>::update(std::uint64_t ip, const bpu::ExecContext& ctx,
                                     bool taken, const bpu::DirPrediction& /*pred*/) {
  TableMatch& provider = scratch_.provider;
  TableMatch& alt = scratch_.alt;

  if (cfg_.use_statistical_corrector) sc_update(ip, ctx, taken, scratch_.tage_pred);
  loop_update(ip, ctx, taken);

  // use_alt_on_na bookkeeping for weak providers.
  if (provider.table >= 0 && provider.weak && provider.prediction != alt.prediction) {
    use_alt_on_na_.update(alt.prediction == taken);
  }

  // Train the provider.
  if (provider.table >= 0) {
    TaggedEntry& e = tables_[static_cast<unsigned>(provider.table)][provider.index];
    e.ctr.update(taken);
    if (provider.prediction != alt.prediction) {
      e.useful.update(provider.prediction == taken);
    }
    // Weak providers also train the alternate so it stays a fallback.
    if (provider.weak) {
      if (alt.table >= 0) {
        tables_[static_cast<unsigned>(alt.table)][alt.index].ctr.update(taken);
      } else {
        bimodal_[alt.index].update(taken);
      }
    }
  } else {
    bimodal_[provider.index].update(taken);
  }

  // Allocate a longer-history entry on a TAGE misprediction.
  if (scratch_.tage_pred != taken &&
      provider.table < static_cast<int>(cfg_.num_tables) - 1) {
    const HartState& hs = harts_[ctx.hart & 1];
    const unsigned start = static_cast<unsigned>(provider.table + 1);
    // Skip 0..1 tables at random to spread allocations (Seznec).
    unsigned first = start + (rng_.below(2) && start + 1 < cfg_.num_tables ? 1 : 0);
    bool allocated = false;
    for (unsigned t = first; t < cfg_.num_tables; ++t) {
      const std::uint32_t idx =
          mapping_->tage_index(ip, folded_for(hs, t, false), t, cfg_.index_bits, ctx) &
          ((1u << cfg_.index_bits) - 1);
      TaggedEntry& e = tables_[t][idx];
      if (!e.valid || e.useful.raw() == 0) {
        e.valid = true;
        e.tag = mapping_->tage_tag(ip, folded_for(hs, t, true), t, cfg_.tag_bits, ctx);
        e.ctr.set(taken ? 0 : -1);
        e.useful.set_raw(0);
        allocated = true;
        break;
      }
    }
    if (!allocated) {
      // All candidates useful — age them so future allocations succeed.
      for (unsigned t = start; t < cfg_.num_tables; ++t) {
        const std::uint32_t idx =
            mapping_->tage_index(ip, folded_for(hs, t, false), t, cfg_.index_bits, ctx) &
            ((1u << cfg_.index_bits) - 1);
        tables_[t][idx].useful.decrement();
      }
    }
  }

  // Periodic graceful useful decay.
  if (++tick_ >= detail::kTickPeriod) {
    tick_ = 0;
    for (auto& table : tables_) {
      for (auto& e : table) e.useful.decrement();
    }
  }

  // Advance this hart's history and folds.
  HartState& hs = harts_[ctx.hart & 1];
  hs.push(taken, cfg_.max_history);
  for (unsigned t = 0; t < cfg_.num_tables; ++t) {
    hs.folded_index[t].update(hs.history, hs.head);
    hs.folded_tag[t].update(hs.history, hs.head);
  }
  hs.path = (hs.path << 1) ^ util::bits(ip, 2, 16);
}

template <class Mapping>
void TagePredictorT<Mapping>::track(const bpu::BranchRecord& rec) {
  // Taken unconditional transfers enter the global history as 'taken'
  // (as in TAGE-SC-L, which conditions on path as well).
  if (!rec.taken) return;
  HartState& hs = harts_[rec.ctx.hart & 1];
  hs.push(true, cfg_.max_history);
  for (unsigned t = 0; t < cfg_.num_tables; ++t) {
    hs.folded_index[t].update(hs.history, hs.head);
    hs.folded_tag[t].update(hs.history, hs.head);
  }
  hs.path = (hs.path << 1) ^ util::bits(rec.ip, 2, 16);
}

template <class Mapping>
void TagePredictorT<Mapping>::flush() {
  for (auto& table : tables_) {
    for (auto& e : table) e = TaggedEntry{};
  }
  for (auto& b : bimodal_) b = util::SaturatingCounter<2>{};
  for (auto& l : loop_) l = LoopEntry{};
  for (auto& b : sc_bias_) b = util::SignedSaturatingCounter<6>{};
  for (auto& t : sc_gehl_) {
    for (auto& c : t) c = util::SignedSaturatingCounter<6>{};
  }
  use_alt_on_na_ = util::SignedSaturatingCounter<4>{};
  for (std::uint8_t h = 0; h < 2; ++h) flush_hart(h);
}

template <class Mapping>
void TagePredictorT<Mapping>::flush_hart(std::uint8_t hart) {
  HartState& hs = harts_[hart & 1];
  std::fill(hs.history.begin(), hs.history.end(), 0);
  hs.head = 0;
  hs.path = 0;
  for (auto& f : hs.folded_index) f.value = 0;
  for (auto& f : hs.folded_tag) f.value = 0;
}

/// The legacy instantiation is compiled once in tage.cc.
extern template class TagePredictorT<>;

}  // namespace stbpu::tage
