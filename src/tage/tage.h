// TAGE-SC-L conditional predictor (Seznec [67]), parameterized for the
// paper's 8KB and 64KB configurations. Structure:
//   * bimodal base table (the "base directional predictor" that reuse-based
//     attacks like BranchScope/BlueThunder target — paper §VI-A2);
//   * N partially-tagged tables indexed by geometrically growing global
//     history lengths, 3-bit prediction counters, 2-bit useful counters;
//   * a loop predictor (L) capturing constant trip counts;
//   * a lightweight GEHL-style statistical corrector (SC).
// All index/tag computation goes through the mapping type (Rt under
// STBPU — Table II: 10-bit index/8-bit tag for 8KB, 13/12 for 64KB), so the
// secured variant differs only in data representation.
//
// Template over the mapping: with a concrete final mapping class every
// per-table Rt index/tag computation inlines into the table walk — the
// per-branch hot loop that dominates TAGE simulation cost.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string_view>
#include <vector>

#include "bpu/direction.h"
#include "bpu/mapping.h"
#include "bpu/types.h"
#include "util/bits.h"
#include "util/rng.h"
#include "util/saturating_counter.h"

namespace stbpu::tage {

struct TageConfig {
  std::string_view name = "TAGE_SC_L_64KB";
  unsigned num_tables = 10;    ///< tagged tables
  unsigned index_bits = 13;    ///< per-table entries = 2^index_bits
  unsigned tag_bits = 12;
  unsigned min_history = 4;
  unsigned max_history = 256;
  unsigned bimodal_bits = 13;  ///< base table entries = 2^bimodal_bits
  bool use_loop_predictor = true;
  bool use_statistical_corrector = true;

  [[nodiscard]] static TageConfig kb64() { return {}; }
  [[nodiscard]] static TageConfig kb8() {
    return {.name = "TAGE_SC_L_8KB",
            .num_tables = 6,
            .index_bits = 10,
            .tag_bits = 8,
            .min_history = 4,
            .max_history = 64,
            .bimodal_bits = 12,
            .use_loop_predictor = true,
            .use_statistical_corrector = true};
  }
};

namespace detail {
inline constexpr int kScThreshold = 8;        // SC override confidence
inline constexpr std::uint32_t kTickPeriod = 1u << 18;  // useful-counter decay period
}  // namespace detail

template <class Mapping = bpu::MappingProvider>
class TagePredictorT final : public bpu::IDirectionPredictor {
 public:
  TagePredictorT(const TageConfig& cfg, const Mapping* mapping,
                 std::uint64_t seed = 0x7A6E);

  [[nodiscard]] bpu::DirPrediction predict(std::uint64_t ip,
                                           const bpu::ExecContext& ctx) override;
  void update(std::uint64_t ip, const bpu::ExecContext& ctx, bool taken,
              const bpu::DirPrediction& pred) override;
  void track(const bpu::BranchRecord& rec) override;
  void flush() override;
  void flush_hart(std::uint8_t hart) override;
  [[nodiscard]] std::string_view name() const override { return cfg_.name; }

  [[nodiscard]] const TageConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const std::vector<unsigned>& history_lengths() const noexcept {
    return history_lengths_;
  }

  /// Per-hart global history with incrementally maintained folded values
  /// (standard TAGE circular-shift-register folding). Public because the
  /// batch-native lookahead (models::EngineT::precompute_n) replicates this
  /// exact state in a shadow fold-forward walk: the fold update is a pure
  /// deterministic function of the branch outcome, so a lookahead that
  /// advances a *copy* of this state produces the identical (ip, folded)
  /// Rt keys the demand path will ask for.
  struct HartState {
    std::vector<std::uint8_t> history;  ///< circular buffer, newest at head
    unsigned head = 0;
    std::uint64_t path = 0;
    // Folds in structure-of-arrays form: index folds occupy [0, n), tag
    // folds [n, 2n) for n tables. The per-fold constants (outgoing-bit ring
    // offset, insertion shift, folded width, value mask) are precomputed at
    // construction so the advance loop below is pure shift/XOR arithmetic —
    // the naive per-fold `% size` / `% comp_length` forms cost two hardware
    // divides per fold per branch, which dominated the walk.
    std::vector<std::uint32_t> fold_value;
    std::vector<std::uint32_t> fold_back;   ///< ring offset of the outgoing bit
    std::vector<std::uint32_t> fold_shift;  ///< orig_length % comp_length
    std::vector<std::uint32_t> fold_comp;   ///< folded width
    std::vector<std::uint32_t> fold_mask;   ///< (1 << comp) - 1

    [[nodiscard]] std::uint32_t fold_index_value(unsigned table) const noexcept {
      return fold_value[table];
    }
    [[nodiscard]] std::uint32_t fold_tag_value(unsigned table) const noexcept {
      return fold_value[(fold_value.size() >> 1) + table];
    }

    /// Advance by one resolved branch: push the outcome bit, refresh every
    /// table's folds (canonical TAGE circular folding: shift in the newest
    /// bit, XOR out the bit leaving the history window), fold the path. The
    /// ONE implementation of history advance — update(), track() and the
    /// shadow walk all run this, so the shadow can never drift from the
    /// live predictor.
    void advance(bool taken, std::uint64_t ip) {
      const unsigned size = static_cast<unsigned>(history.size());
      head = head + 1 == size ? 0 : head + 1;
      const std::uint32_t newest = taken ? 1u : 0u;
      history[head] = static_cast<std::uint8_t>(newest);
      const std::size_t nf = fold_value.size();
      for (std::size_t j = 0; j < nf; ++j) {
        unsigned idx = head + fold_back[j];
        if (idx >= size) idx -= size;
        std::uint32_t v = (fold_value[j] << 1) | newest;
        v ^= static_cast<std::uint32_t>(history[idx]) << fold_shift[j];
        v ^= v >> fold_comp[j];
        fold_value[j] = v & fold_mask[j];
      }
      path = (path << 1) ^ util::bits(ip, 2, 16);
    }
  };
  /// A shadow copy of one hart's fold state (same type — seed_shadow
  /// copies, ShadowHistory::advance walks forward).
  using ShadowHistory = HartState;

  /// Copy hart `hart`'s live fold state into `sh` (vector assignments reuse
  /// `sh`'s capacity — per-window seeding does not allocate in steady state).
  void seed_shadow(ShadowHistory& sh, std::uint8_t hart) const {
    const HartState& hs = harts_[hart & 1];
    sh.history = hs.history;
    sh.head = hs.head;
    sh.path = hs.path;
    sh.fold_value = hs.fold_value;
    sh.fold_back = hs.fold_back;
    sh.fold_shift = hs.fold_shift;
    sh.fold_comp = hs.fold_comp;
    sh.fold_mask = hs.fold_mask;
  }

  /// The 64-bit folded-history key handed to the mapping's Rt functions for
  /// `table`: both folds plus a path slice, packed exactly as the demand
  /// path packs them (folded_for delegates here — one source of truth).
  [[nodiscard]] static std::uint64_t folded_key(const HartState& hs, unsigned table,
                                                bool for_tag) noexcept {
    const std::uint64_t base = static_cast<std::uint64_t>(hs.fold_index_value(table)) |
                               (static_cast<std::uint64_t>(hs.fold_tag_value(table)) << 20) |
                               (util::bits(hs.path, 0, 12) << 44);
    return for_tag ? tag_key(base) : base;
  }

  /// Derive the tag-side packed key from the index-side one (callers that
  /// need both avoid packing the base twice).
  [[nodiscard]] static constexpr std::uint64_t tag_key(std::uint64_t base) noexcept {
    return base ^ (base >> 7) ^ 0x5A5AULL;
  }

 private:
  struct TaggedEntry {
    util::SignedSaturatingCounter<3> ctr;
    std::uint32_t tag = 0;
    util::SaturatingCounter<2> useful{0};
    bool valid = false;
  };

  struct LoopEntry {
    std::uint32_t tag = 0;
    std::uint16_t past_iters = 0;     ///< learned trip count
    std::uint16_t current_iter = 0;
    util::SaturatingCounter<2> conf{0};
    bool valid = false;
  };

  struct TableMatch {
    int table = -1;  ///< -1: bimodal
    std::uint32_t index = 0;
    bool prediction = false;
    bool weak = false;
  };

  [[nodiscard]] std::uint64_t folded_for(const HartState& hs, unsigned table,
                                         bool for_tag) const;
  [[nodiscard]] std::uint32_t bimodal_index(std::uint64_t ip,
                                            const bpu::ExecContext& ctx) const;
  [[nodiscard]] std::uint32_t pht1_of(std::uint64_t ip, const bpu::ExecContext& ctx) const;
  [[nodiscard]] std::uint32_t sc_row_of(std::uint64_t ip, const bpu::ExecContext& ctx) const;
  void loop_keys(std::uint64_t ip, const bpu::ExecContext& ctx) const;
  void find_matches(std::uint64_t ip, const bpu::ExecContext& ctx, TableMatch& provider,
                    TableMatch& alt);
  [[nodiscard]] bool loop_predict(std::uint64_t ip, const bpu::ExecContext& ctx,
                                  bool& valid) const;
  void loop_update(std::uint64_t ip, const bpu::ExecContext& ctx, bool taken);
  [[nodiscard]] int sc_sum(std::uint64_t ip, const bpu::ExecContext& ctx,
                           bool tage_pred) const;
  void sc_update(std::uint64_t ip, const bpu::ExecContext& ctx, bool taken,
                 bool tage_pred);

  TageConfig cfg_;
  const Mapping* mapping_;
  std::vector<unsigned> history_lengths_;
  std::vector<std::vector<TaggedEntry>> tables_;
  std::vector<util::SaturatingCounter<2>> bimodal_;
  std::vector<LoopEntry> loop_;
  // SC: bias table + two GEHL history tables of 6-bit signed counters.
  std::vector<util::SignedSaturatingCounter<6>> sc_bias_;
  std::array<std::vector<util::SignedSaturatingCounter<6>>, 2> sc_gehl_;
  util::SignedSaturatingCounter<4> use_alt_on_na_;
  HartState harts_[2];
  util::Xoshiro256 rng_;
  std::uint32_t tick_ = 0;

  // Transient state between predict() and update() for the same branch —
  // the simulator always pairs them, matching speculative update repair.
  // ψ and the fold state are stable for the whole predict→update pair (the
  // monitor fires at the end of the access, history advances at the end of
  // update), so every cached value below is bit-identical to a recompute.
  struct Scratch {
    TableMatch provider, alt;
    bool tage_pred = false;
    bool loop_valid = false;
    bool loop_pred = false;
    bool sc_used = false;
    bool final_pred = false;
    // Prediction-time per-table indices (masked) and tags, valid for tables
    // [computed_from, num_tables); update()'s allocate/aging paths reuse
    // them instead of recomputing folds + mapping hashes per table.
    std::vector<std::uint32_t> gi;
    std::vector<std::uint32_t> gtag;
    unsigned computed_from = 0;
    // Lazily shared sub-keys (each otherwise computed 2-4x per branch).
    std::uint32_t pht1 = 0;
    std::uint32_t sc_row = 0;
    std::uint32_t loop_row = 0;
    std::uint32_t loop_tag = 0;
    bool pht1_valid = false;
    bool sc_row_valid = false;
    bool loop_keys_valid = false;
  };
  mutable Scratch scratch_;
};

/// Legacy dynamic-dispatch instantiation (compiled once in tage.cc).
using TagePredictor = TagePredictorT<>;

// ---------------------------------------------------------------------------
// Implementation (template — shared verbatim by every instantiation).
// ---------------------------------------------------------------------------

template <class Mapping>
TagePredictorT<Mapping>::TagePredictorT(const TageConfig& cfg, const Mapping* mapping,
                                        std::uint64_t seed)
    : cfg_(cfg), mapping_(mapping), rng_(seed) {
  // Geometric history series L(i) = min * (max/min)^(i/(N-1)) (Seznec).
  history_lengths_.resize(cfg_.num_tables);
  for (unsigned i = 0; i < cfg_.num_tables; ++i) {
    const double frac = cfg_.num_tables == 1
                            ? 1.0
                            : static_cast<double>(i) / (cfg_.num_tables - 1);
    const double len = cfg_.min_history *
                       std::pow(static_cast<double>(cfg_.max_history) / cfg_.min_history, frac);
    history_lengths_[i] = std::max<unsigned>(cfg_.min_history,
                                             static_cast<unsigned>(len + 0.5));
    if (i > 0 && history_lengths_[i] <= history_lengths_[i - 1]) {
      history_lengths_[i] = history_lengths_[i - 1] + 1;
    }
  }

  tables_.assign(cfg_.num_tables,
                 std::vector<TaggedEntry>(std::size_t{1} << cfg_.index_bits));
  bimodal_.assign(std::size_t{1} << cfg_.bimodal_bits, util::SaturatingCounter<2>{});
  loop_.assign(64, LoopEntry{});
  sc_bias_.assign(1u << 11, util::SignedSaturatingCounter<6>{});
  for (auto& t : sc_gehl_) t.assign(1u << 10, util::SignedSaturatingCounter<6>{});

  const unsigned hist_buf = cfg_.max_history + 8;
  for (auto& hs : harts_) {
    hs.history.assign(hist_buf, 0);
    hs.head = 0;
    hs.path = 0;
    const unsigned n = cfg_.num_tables;
    hs.fold_value.assign(2 * n, 0);
    hs.fold_back.resize(2 * n);
    hs.fold_shift.resize(2 * n);
    hs.fold_comp.resize(2 * n);
    hs.fold_mask.resize(2 * n);
    for (unsigned t = 0; t < n; ++t) {
      const unsigned len = history_lengths_[t];
      // Index fold at slot t, tag fold at slot n + t.
      const unsigned comps[2] = {cfg_.index_bits, cfg_.tag_bits};
      for (unsigned half = 0; half < 2; ++half) {
        const unsigned j = half * n + t;
        hs.fold_back[j] = hist_buf - len % hist_buf;
        hs.fold_shift[j] = len % comps[half];
        hs.fold_comp[j] = comps[half];
        hs.fold_mask[j] = (1u << comps[half]) - 1;
      }
    }
  }
  scratch_.gi.resize(cfg_.num_tables);
  scratch_.gtag.resize(cfg_.num_tables);
}

template <class Mapping>
std::uint64_t TagePredictorT<Mapping>::folded_for(const HartState& hs, unsigned table,
                                                  bool for_tag) const {
  // Pack both folds plus a path slice; the provider hashes everything.
  return folded_key(hs, table, for_tag);
}

template <class Mapping>
std::uint32_t TagePredictorT<Mapping>::pht1_of(std::uint64_t ip,
                                               const bpu::ExecContext& ctx) const {
  if (!scratch_.pht1_valid) {
    scratch_.pht1 = mapping_->pht_index_1level(ip, ctx);
    scratch_.pht1_valid = true;
  }
  return scratch_.pht1;
}

template <class Mapping>
std::uint32_t TagePredictorT<Mapping>::sc_row_of(std::uint64_t ip,
                                                 const bpu::ExecContext& ctx) const {
  if (!scratch_.sc_row_valid) {
    scratch_.sc_row = mapping_->perceptron_row(ip, 10, ctx);
    scratch_.sc_row_valid = true;
  }
  return scratch_.sc_row;
}

template <class Mapping>
void TagePredictorT<Mapping>::loop_keys(std::uint64_t ip,
                                        const bpu::ExecContext& ctx) const {
  if (!scratch_.loop_keys_valid) {
    scratch_.loop_row = mapping_->perceptron_row(ip, 6, ctx) & 63;
    scratch_.loop_tag = mapping_->tage_tag(ip, 0, 63, 10, ctx);
    scratch_.loop_keys_valid = true;
  }
}

template <class Mapping>
std::uint32_t TagePredictorT<Mapping>::bimodal_index(std::uint64_t ip,
                                                     const bpu::ExecContext& ctx) const {
  // The base directional predictor is remapped through R3 under STBPU,
  // exactly like the baseline PHT (paper: attacks on the base predictor
  // drive the misprediction threshold).
  return pht1_of(ip, ctx) & ((1u << cfg_.bimodal_bits) - 1);
}

template <class Mapping>
void TagePredictorT<Mapping>::find_matches(std::uint64_t ip, const bpu::ExecContext& ctx,
                                           TableMatch& provider, TableMatch& alt) {
  provider = {};
  alt = {};
  const HartState& hs = harts_[ctx.hart & 1];
  const std::uint32_t index_mask = (1u << cfg_.index_bits) - 1;
  scratch_.computed_from = cfg_.num_tables;
  for (int t = static_cast<int>(cfg_.num_tables) - 1; t >= 0; --t) {
    const unsigned ut = static_cast<unsigned>(t);
    const std::uint32_t idx =
        mapping_->tage_index(ip, folded_for(hs, ut, false), ut, cfg_.index_bits, ctx) &
        index_mask;
    const std::uint32_t tag =
        mapping_->tage_tag(ip, folded_for(hs, ut, true), ut, cfg_.tag_bits, ctx);
    // Cache prediction-time index/tag for update()'s allocate/aging reuse.
    scratch_.gi[ut] = idx;
    scratch_.gtag[ut] = tag;
    scratch_.computed_from = ut;
    const TaggedEntry& e = tables_[ut][idx];
    if (e.valid && e.tag == tag) {
      const TableMatch m{.table = t,
                         .index = idx,
                         .prediction = e.ctr.taken(),
                         .weak = e.ctr.value() == 0 || e.ctr.value() == -1};
      if (provider.table < 0) {
        provider = m;
      } else if (alt.table < 0) {
        alt = m;
        break;
      }
    }
  }
  if (provider.table < 0) {
    const std::uint32_t bi = bimodal_index(ip, ctx);
    provider = {.table = -1, .index = bi, .prediction = bimodal_[bi].taken(),
                .weak = !bimodal_[bi].is_saturated()};
  } else if (alt.table < 0) {
    const std::uint32_t bi = bimodal_index(ip, ctx);
    alt = {.table = -1, .index = bi, .prediction = bimodal_[bi].taken(),
           .weak = !bimodal_[bi].is_saturated()};
  }
}

template <class Mapping>
bool TagePredictorT<Mapping>::loop_predict(std::uint64_t ip, const bpu::ExecContext& ctx,
                                           bool& valid) const {
  valid = false;
  if (!cfg_.use_loop_predictor) return false;
  loop_keys(ip, ctx);
  const LoopEntry& e = loop_[scratch_.loop_row];
  if (e.valid && e.tag == scratch_.loop_tag && e.past_iters > 0 && e.conf.raw() == 3) {
    valid = true;
    return e.current_iter != e.past_iters;  // taken until the trip end
  }
  return false;
}

template <class Mapping>
void TagePredictorT<Mapping>::loop_update(std::uint64_t ip, const bpu::ExecContext& ctx,
                                          bool taken) {
  if (!cfg_.use_loop_predictor) return;
  loop_keys(ip, ctx);
  const std::uint32_t tag = scratch_.loop_tag;
  LoopEntry& e = loop_[scratch_.loop_row];
  if (!e.valid || e.tag != tag) {
    // Allocate on a not-taken outcome (potential loop exit) if the slot is
    // cold; never displace a confident entry.
    if (!taken && (!e.valid || e.conf.raw() == 0)) {
      e = LoopEntry{.tag = tag, .past_iters = 0, .current_iter = 0,
                    .conf = util::SaturatingCounter<2>{0}, .valid = true};
    }
    return;
  }
  if (taken) {
    ++e.current_iter;
    if (e.past_iters != 0 && e.current_iter > e.past_iters) {
      // Trip count changed — retrain.
      e.past_iters = 0;
      e.conf = util::SaturatingCounter<2>{0};
    }
  } else {
    if (e.past_iters == 0) {
      e.past_iters = e.current_iter;  // first full trip observed
    } else if (e.past_iters == e.current_iter) {
      e.conf.increment();
    } else {
      e.past_iters = e.current_iter;
      e.conf = util::SaturatingCounter<2>{0};
    }
    e.current_iter = 0;
  }
}

template <class Mapping>
int TagePredictorT<Mapping>::sc_sum(std::uint64_t ip, const bpu::ExecContext& ctx,
                                    bool tage_pred) const {
  const HartState& hs = harts_[ctx.hart & 1];
  const std::uint32_t row = sc_row_of(ip, ctx);
  const std::uint32_t bias_idx =
      ((pht1_of(ip, ctx) << 1) | (tage_pred ? 1 : 0)) & ((1u << 11) - 1);
  const std::uint32_t g0 = (row ^ hs.fold_index_value(0)) & ((1u << 10) - 1);
  const std::uint32_t g1 =
      (row ^ hs.fold_index_value(cfg_.num_tables > 2 ? 2 : cfg_.num_tables - 1)) &
      ((1u << 10) - 1);
  int sum = 2 * sc_bias_[bias_idx].value() + 1;
  sum += 2 * sc_gehl_[0][g0].value() + 1;
  sum += 2 * sc_gehl_[1][g1].value() + 1;
  sum += tage_pred ? detail::kScThreshold / 2 : -detail::kScThreshold / 2;  // TAGE's vote
  return sum;
}

template <class Mapping>
void TagePredictorT<Mapping>::sc_update(std::uint64_t ip, const bpu::ExecContext& ctx,
                                        bool taken, bool tage_pred) {
  const HartState& hs = harts_[ctx.hart & 1];
  const std::uint32_t row = sc_row_of(ip, ctx);
  const std::uint32_t bias_idx =
      ((pht1_of(ip, ctx) << 1) | (tage_pred ? 1 : 0)) & ((1u << 11) - 1);
  const std::uint32_t g0 = (row ^ hs.fold_index_value(0)) & ((1u << 10) - 1);
  const std::uint32_t g1 =
      (row ^ hs.fold_index_value(cfg_.num_tables > 2 ? 2 : cfg_.num_tables - 1)) &
      ((1u << 10) - 1);
  sc_bias_[bias_idx].update(taken);
  sc_gehl_[0][g0].update(taken);
  sc_gehl_[1][g1].update(taken);
}

template <class Mapping>
bpu::DirPrediction TagePredictorT<Mapping>::predict(std::uint64_t ip,
                                                    const bpu::ExecContext& ctx) {
  // New branch: invalidate the lazily cached sub-keys (ip/ψ may differ).
  scratch_.pht1_valid = false;
  scratch_.sc_row_valid = false;
  scratch_.loop_keys_valid = false;
  find_matches(ip, ctx, scratch_.provider, scratch_.alt);

  bool pred = scratch_.provider.prediction;
  // Newly allocated (weak, not yet useful) provider entries may be less
  // reliable than the alternate prediction (Seznec's use_alt_on_na).
  if (scratch_.provider.table >= 0 && scratch_.provider.weak &&
      use_alt_on_na_.taken()) {
    pred = scratch_.alt.prediction;
  }
  scratch_.tage_pred = pred;

  scratch_.loop_pred = loop_predict(ip, ctx, scratch_.loop_valid);
  if (scratch_.loop_valid) pred = scratch_.loop_pred;

  scratch_.sc_used = false;
  if (cfg_.use_statistical_corrector) {
    const int sum = sc_sum(ip, ctx, pred);
    if ((sum >= 0) != pred && std::abs(sum) >= detail::kScThreshold) {
      pred = sum >= 0;
      scratch_.sc_used = true;
    }
  }
  scratch_.final_pred = pred;
  return {.taken = pred, .from_tagged = scratch_.provider.table >= 0};
}

template <class Mapping>
void TagePredictorT<Mapping>::update(std::uint64_t ip, const bpu::ExecContext& ctx,
                                     bool taken, const bpu::DirPrediction& /*pred*/) {
  TableMatch& provider = scratch_.provider;
  TableMatch& alt = scratch_.alt;

  if (cfg_.use_statistical_corrector) sc_update(ip, ctx, taken, scratch_.tage_pred);
  loop_update(ip, ctx, taken);

  // use_alt_on_na bookkeeping for weak providers.
  if (provider.table >= 0 && provider.weak && provider.prediction != alt.prediction) {
    use_alt_on_na_.update(alt.prediction == taken);
  }

  // Train the provider.
  if (provider.table >= 0) {
    TaggedEntry& e = tables_[static_cast<unsigned>(provider.table)][provider.index];
    e.ctr.update(taken);
    if (provider.prediction != alt.prediction) {
      e.useful.update(provider.prediction == taken);
    }
    // Weak providers also train the alternate so it stays a fallback.
    if (provider.weak) {
      if (alt.table >= 0) {
        tables_[static_cast<unsigned>(alt.table)][alt.index].ctr.update(taken);
      } else {
        bimodal_[alt.index].update(taken);
      }
    }
  } else {
    bimodal_[provider.index].update(taken);
  }

  // Allocate a longer-history entry on a TAGE misprediction. All candidate
  // tables are at or above the provider, i.e. inside the range find_matches
  // walked at predict time — the folds have not advanced yet and ψ is
  // unchanged within the access, so the cached indices/tags are exactly what
  // a recompute would produce.
  if (scratch_.tage_pred != taken &&
      provider.table < static_cast<int>(cfg_.num_tables) - 1) {
    const unsigned start = static_cast<unsigned>(provider.table + 1);
    assert(start >= scratch_.computed_from);
    // Skip 0..1 tables at random to spread allocations (Seznec).
    unsigned first = start + (rng_.below(2) && start + 1 < cfg_.num_tables ? 1 : 0);
    bool allocated = false;
    for (unsigned t = first; t < cfg_.num_tables; ++t) {
      TaggedEntry& e = tables_[t][scratch_.gi[t]];
      if (!e.valid || e.useful.raw() == 0) {
        e.valid = true;
        e.tag = scratch_.gtag[t];
        e.ctr.set(taken ? 0 : -1);
        e.useful.set_raw(0);
        allocated = true;
        break;
      }
    }
    if (!allocated) {
      // All candidates useful — age them so future allocations succeed.
      for (unsigned t = start; t < cfg_.num_tables; ++t) {
        tables_[t][scratch_.gi[t]].useful.decrement();
      }
    }
  }

  // Periodic graceful useful decay.
  if (++tick_ >= detail::kTickPeriod) {
    tick_ = 0;
    for (auto& table : tables_) {
      for (auto& e : table) e.useful.decrement();
    }
  }

  // Advance this hart's history and folds.
  harts_[ctx.hart & 1].advance(taken, ip);
}

template <class Mapping>
void TagePredictorT<Mapping>::track(const bpu::BranchRecord& rec) {
  // Taken unconditional transfers enter the global history as 'taken'
  // (as in TAGE-SC-L, which conditions on path as well).
  if (!rec.taken) return;
  harts_[rec.ctx.hart & 1].advance(true, rec.ip);
}

template <class Mapping>
void TagePredictorT<Mapping>::flush() {
  for (auto& table : tables_) {
    for (auto& e : table) e = TaggedEntry{};
  }
  for (auto& b : bimodal_) b = util::SaturatingCounter<2>{};
  for (auto& l : loop_) l = LoopEntry{};
  for (auto& b : sc_bias_) b = util::SignedSaturatingCounter<6>{};
  for (auto& t : sc_gehl_) {
    for (auto& c : t) c = util::SignedSaturatingCounter<6>{};
  }
  use_alt_on_na_ = util::SignedSaturatingCounter<4>{};
  for (std::uint8_t h = 0; h < 2; ++h) flush_hart(h);
}

template <class Mapping>
void TagePredictorT<Mapping>::flush_hart(std::uint8_t hart) {
  HartState& hs = harts_[hart & 1];
  std::fill(hs.history.begin(), hs.history.end(), 0);
  hs.head = 0;
  hs.path = 0;
  std::fill(hs.fold_value.begin(), hs.fold_value.end(), 0);
}

/// The legacy instantiation is compiled once in tage.cc.
extern template class TagePredictorT<>;

}  // namespace stbpu::tage
