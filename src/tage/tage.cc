#include "tage/tage.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/bits.h"

namespace stbpu::tage {

namespace {
constexpr int kScThreshold = 8;        // SC override confidence
constexpr std::uint32_t kTickPeriod = 1u << 18;  // useful-counter decay period
}  // namespace

TagePredictor::TagePredictor(const TageConfig& cfg, const bpu::MappingProvider* mapping,
                             std::uint64_t seed)
    : cfg_(cfg), mapping_(mapping), rng_(seed) {
  // Geometric history series L(i) = min * (max/min)^(i/(N-1)) (Seznec).
  history_lengths_.resize(cfg_.num_tables);
  for (unsigned i = 0; i < cfg_.num_tables; ++i) {
    const double frac = cfg_.num_tables == 1
                            ? 1.0
                            : static_cast<double>(i) / (cfg_.num_tables - 1);
    const double len = cfg_.min_history *
                       std::pow(static_cast<double>(cfg_.max_history) / cfg_.min_history, frac);
    history_lengths_[i] = std::max<unsigned>(cfg_.min_history,
                                             static_cast<unsigned>(len + 0.5));
    if (i > 0 && history_lengths_[i] <= history_lengths_[i - 1]) {
      history_lengths_[i] = history_lengths_[i - 1] + 1;
    }
  }

  tables_.assign(cfg_.num_tables,
                 std::vector<TaggedEntry>(std::size_t{1} << cfg_.index_bits));
  bimodal_.assign(std::size_t{1} << cfg_.bimodal_bits, util::SaturatingCounter<2>{});
  loop_.assign(64, LoopEntry{});
  sc_bias_.assign(1u << 11, util::SignedSaturatingCounter<6>{});
  for (auto& t : sc_gehl_) t.assign(1u << 10, util::SignedSaturatingCounter<6>{});

  const unsigned hist_buf = cfg_.max_history + 8;
  for (auto& hs : harts_) {
    hs.history.assign(hist_buf, 0);
    hs.head = 0;
    hs.folded_index.resize(cfg_.num_tables);
    hs.folded_tag.resize(cfg_.num_tables);
    for (unsigned t = 0; t < cfg_.num_tables; ++t) {
      hs.folded_index[t] = {.value = 0,
                            .comp_length = cfg_.index_bits,
                            .orig_length = history_lengths_[t]};
      hs.folded_tag[t] = {.value = 0,
                          .comp_length = cfg_.tag_bits,
                          .orig_length = history_lengths_[t]};
    }
  }
}

void TagePredictor::Folded::update(const std::vector<std::uint8_t>& hist, unsigned head) {
  // Canonical TAGE circular folding: shift in the newest bit, XOR out the
  // bit that leaves the history window.
  const unsigned size = static_cast<unsigned>(hist.size());
  const std::uint8_t newest = hist[head];
  const std::uint8_t outgoing = hist[(head + size - orig_length % size) % size];
  value = (value << 1) | newest;
  value ^= static_cast<std::uint32_t>(outgoing) << (orig_length % comp_length);
  value ^= value >> comp_length;
  value &= (1u << comp_length) - 1;
}

void TagePredictor::HartState::push(bool taken, unsigned /*max_hist*/) {
  head = (head + 1) % history.size();
  history[head] = taken ? 1 : 0;
}

std::uint64_t TagePredictor::folded_for(const HartState& hs, unsigned table,
                                        bool for_tag) const {
  const std::uint32_t fi = hs.folded_index[table].value;
  const std::uint32_t ft = hs.folded_tag[table].value;
  // Pack both folds plus a path slice; the provider hashes everything.
  const std::uint64_t base =
      static_cast<std::uint64_t>(fi) | (static_cast<std::uint64_t>(ft) << 20) |
      (util::bits(hs.path, 0, 12) << 44);
  return for_tag ? (base ^ (base >> 7) ^ 0x5A5AULL) : base;
}

std::uint32_t TagePredictor::bimodal_index(std::uint64_t ip,
                                           const bpu::ExecContext& ctx) const {
  // The base directional predictor is remapped through R3 under STBPU,
  // exactly like the baseline PHT (paper: attacks on the base predictor
  // drive the misprediction threshold).
  return mapping_->pht_index_1level(ip, ctx) & ((1u << cfg_.bimodal_bits) - 1);
}

void TagePredictor::find_matches(std::uint64_t ip, const bpu::ExecContext& ctx,
                                 TableMatch& provider, TableMatch& alt) {
  provider = {};
  alt = {};
  const HartState& hs = harts_[ctx.hart & 1];
  for (int t = static_cast<int>(cfg_.num_tables) - 1; t >= 0; --t) {
    const unsigned ut = static_cast<unsigned>(t);
    const std::uint32_t idx =
        mapping_->tage_index(ip, folded_for(hs, ut, false), ut, cfg_.index_bits, ctx);
    const std::uint32_t tag =
        mapping_->tage_tag(ip, folded_for(hs, ut, true), ut, cfg_.tag_bits, ctx);
    const TaggedEntry& e = tables_[ut][idx & ((1u << cfg_.index_bits) - 1)];
    if (e.valid && e.tag == tag) {
      const TableMatch m{.table = t,
                         .index = idx & ((1u << cfg_.index_bits) - 1),
                         .prediction = e.ctr.taken(),
                         .weak = e.ctr.value() == 0 || e.ctr.value() == -1};
      if (provider.table < 0) {
        provider = m;
      } else if (alt.table < 0) {
        alt = m;
        break;
      }
    }
  }
  if (provider.table < 0) {
    const std::uint32_t bi = bimodal_index(ip, ctx);
    provider = {.table = -1, .index = bi, .prediction = bimodal_[bi].taken(),
                .weak = !bimodal_[bi].is_saturated()};
  } else if (alt.table < 0) {
    const std::uint32_t bi = bimodal_index(ip, ctx);
    alt = {.table = -1, .index = bi, .prediction = bimodal_[bi].taken(),
           .weak = !bimodal_[bi].is_saturated()};
  }
}

bool TagePredictor::loop_predict(std::uint64_t ip, const bpu::ExecContext& ctx,
                                 bool& valid) const {
  valid = false;
  if (!cfg_.use_loop_predictor) return false;
  const std::uint32_t row = mapping_->perceptron_row(ip, 6, ctx) & 63;
  const std::uint32_t tag = mapping_->tage_tag(ip, 0, 63, 10, ctx);
  const LoopEntry& e = loop_[row];
  if (e.valid && e.tag == tag && e.past_iters > 0 && e.conf.raw() == 3) {
    valid = true;
    return e.current_iter != e.past_iters;  // taken until the trip end
  }
  return false;
}

void TagePredictor::loop_update(std::uint64_t ip, const bpu::ExecContext& ctx,
                                bool taken) {
  if (!cfg_.use_loop_predictor) return;
  const std::uint32_t row = mapping_->perceptron_row(ip, 6, ctx) & 63;
  const std::uint32_t tag = mapping_->tage_tag(ip, 0, 63, 10, ctx);
  LoopEntry& e = loop_[row];
  if (!e.valid || e.tag != tag) {
    // Allocate on a not-taken outcome (potential loop exit) if the slot is
    // cold; never displace a confident entry.
    if (!taken && (!e.valid || e.conf.raw() == 0)) {
      e = LoopEntry{.tag = tag, .past_iters = 0, .current_iter = 0,
                    .conf = util::SaturatingCounter<2>{0}, .valid = true};
    }
    return;
  }
  if (taken) {
    ++e.current_iter;
    if (e.past_iters != 0 && e.current_iter > e.past_iters) {
      // Trip count changed — retrain.
      e.past_iters = 0;
      e.conf = util::SaturatingCounter<2>{0};
    }
  } else {
    if (e.past_iters == 0) {
      e.past_iters = e.current_iter;  // first full trip observed
    } else if (e.past_iters == e.current_iter) {
      e.conf.increment();
    } else {
      e.past_iters = e.current_iter;
      e.conf = util::SaturatingCounter<2>{0};
    }
    e.current_iter = 0;
  }
}

int TagePredictor::sc_sum(std::uint64_t ip, const bpu::ExecContext& ctx,
                          bool tage_pred) const {
  const HartState& hs = harts_[ctx.hart & 1];
  const std::uint32_t bias_idx =
      ((mapping_->pht_index_1level(ip, ctx) << 1) | (tage_pred ? 1 : 0)) & ((1u << 11) - 1);
  const std::uint32_t g0 =
      (mapping_->perceptron_row(ip, 10, ctx) ^ hs.folded_index[0].value) & ((1u << 10) - 1);
  const std::uint32_t g1 =
      (mapping_->perceptron_row(ip, 10, ctx) ^
       (cfg_.num_tables > 2 ? hs.folded_index[2].value : hs.folded_index.back().value)) &
      ((1u << 10) - 1);
  int sum = 2 * sc_bias_[bias_idx].value() + 1;
  sum += 2 * sc_gehl_[0][g0].value() + 1;
  sum += 2 * sc_gehl_[1][g1].value() + 1;
  sum += tage_pred ? kScThreshold / 2 : -kScThreshold / 2;  // TAGE's vote
  return sum;
}

void TagePredictor::sc_update(std::uint64_t ip, const bpu::ExecContext& ctx, bool taken,
                              bool tage_pred) {
  const HartState& hs = harts_[ctx.hart & 1];
  const std::uint32_t bias_idx =
      ((mapping_->pht_index_1level(ip, ctx) << 1) | (tage_pred ? 1 : 0)) & ((1u << 11) - 1);
  const std::uint32_t g0 =
      (mapping_->perceptron_row(ip, 10, ctx) ^ hs.folded_index[0].value) & ((1u << 10) - 1);
  const std::uint32_t g1 =
      (mapping_->perceptron_row(ip, 10, ctx) ^
       (cfg_.num_tables > 2 ? hs.folded_index[2].value : hs.folded_index.back().value)) &
      ((1u << 10) - 1);
  sc_bias_[bias_idx].update(taken);
  sc_gehl_[0][g0].update(taken);
  sc_gehl_[1][g1].update(taken);
}

bpu::DirPrediction TagePredictor::predict(std::uint64_t ip, const bpu::ExecContext& ctx) {
  find_matches(ip, ctx, scratch_.provider, scratch_.alt);

  bool pred = scratch_.provider.prediction;
  // Newly allocated (weak, not yet useful) provider entries may be less
  // reliable than the alternate prediction (Seznec's use_alt_on_na).
  if (scratch_.provider.table >= 0 && scratch_.provider.weak &&
      use_alt_on_na_.taken()) {
    pred = scratch_.alt.prediction;
  }
  scratch_.tage_pred = pred;

  scratch_.loop_pred = loop_predict(ip, ctx, scratch_.loop_valid);
  if (scratch_.loop_valid) pred = scratch_.loop_pred;

  scratch_.sc_used = false;
  if (cfg_.use_statistical_corrector) {
    const int sum = sc_sum(ip, ctx, pred);
    if ((sum >= 0) != pred && std::abs(sum) >= kScThreshold) {
      pred = sum >= 0;
      scratch_.sc_used = true;
    }
  }
  scratch_.final_pred = pred;
  return {.taken = pred, .from_tagged = scratch_.provider.table >= 0};
}

void TagePredictor::update(std::uint64_t ip, const bpu::ExecContext& ctx, bool taken,
                           const bpu::DirPrediction& /*pred*/) {
  TableMatch& provider = scratch_.provider;
  TableMatch& alt = scratch_.alt;

  if (cfg_.use_statistical_corrector) sc_update(ip, ctx, taken, scratch_.tage_pred);
  loop_update(ip, ctx, taken);

  // use_alt_on_na bookkeeping for weak providers.
  if (provider.table >= 0 && provider.weak && provider.prediction != alt.prediction) {
    use_alt_on_na_.update(alt.prediction == taken);
  }

  // Train the provider.
  if (provider.table >= 0) {
    TaggedEntry& e = tables_[static_cast<unsigned>(provider.table)][provider.index];
    e.ctr.update(taken);
    if (provider.prediction != alt.prediction) {
      e.useful.update(provider.prediction == taken);
    }
    // Weak providers also train the alternate so it stays a fallback.
    if (provider.weak) {
      if (alt.table >= 0) {
        tables_[static_cast<unsigned>(alt.table)][alt.index].ctr.update(taken);
      } else {
        bimodal_[alt.index].update(taken);
      }
    }
  } else {
    bimodal_[provider.index].update(taken);
  }

  // Allocate a longer-history entry on a TAGE misprediction.
  if (scratch_.tage_pred != taken &&
      provider.table < static_cast<int>(cfg_.num_tables) - 1) {
    const HartState& hs = harts_[ctx.hart & 1];
    const unsigned start = static_cast<unsigned>(provider.table + 1);
    // Skip 0..1 tables at random to spread allocations (Seznec).
    unsigned first = start + (rng_.below(2) && start + 1 < cfg_.num_tables ? 1 : 0);
    bool allocated = false;
    for (unsigned t = first; t < cfg_.num_tables; ++t) {
      const std::uint32_t idx =
          mapping_->tage_index(ip, folded_for(hs, t, false), t, cfg_.index_bits, ctx) &
          ((1u << cfg_.index_bits) - 1);
      TaggedEntry& e = tables_[t][idx];
      if (!e.valid || e.useful.raw() == 0) {
        e.valid = true;
        e.tag = mapping_->tage_tag(ip, folded_for(hs, t, true), t, cfg_.tag_bits, ctx);
        e.ctr.set(taken ? 0 : -1);
        e.useful.set_raw(0);
        allocated = true;
        break;
      }
    }
    if (!allocated) {
      // All candidates useful — age them so future allocations succeed.
      for (unsigned t = start; t < cfg_.num_tables; ++t) {
        const std::uint32_t idx =
            mapping_->tage_index(ip, folded_for(hs, t, false), t, cfg_.index_bits, ctx) &
            ((1u << cfg_.index_bits) - 1);
        tables_[t][idx].useful.decrement();
      }
    }
  }

  // Periodic graceful useful decay.
  if (++tick_ >= kTickPeriod) {
    tick_ = 0;
    for (auto& table : tables_) {
      for (auto& e : table) e.useful.decrement();
    }
  }

  // Advance this hart's history and folds.
  HartState& hs = harts_[ctx.hart & 1];
  hs.push(taken, cfg_.max_history);
  for (unsigned t = 0; t < cfg_.num_tables; ++t) {
    hs.folded_index[t].update(hs.history, hs.head);
    hs.folded_tag[t].update(hs.history, hs.head);
  }
  hs.path = (hs.path << 1) ^ util::bits(ip, 2, 16);
}

void TagePredictor::track(const bpu::BranchRecord& rec) {
  // Taken unconditional transfers enter the global history as 'taken'
  // (as in TAGE-SC-L, which conditions on path as well).
  if (!rec.taken) return;
  HartState& hs = harts_[rec.ctx.hart & 1];
  hs.push(true, cfg_.max_history);
  for (unsigned t = 0; t < cfg_.num_tables; ++t) {
    hs.folded_index[t].update(hs.history, hs.head);
    hs.folded_tag[t].update(hs.history, hs.head);
  }
  hs.path = (hs.path << 1) ^ util::bits(rec.ip, 2, 16);
}

void TagePredictor::flush() {
  for (auto& table : tables_) {
    for (auto& e : table) e = TaggedEntry{};
  }
  for (auto& b : bimodal_) b = util::SaturatingCounter<2>{};
  for (auto& l : loop_) l = LoopEntry{};
  for (auto& b : sc_bias_) b = util::SignedSaturatingCounter<6>{};
  for (auto& t : sc_gehl_) {
    for (auto& c : t) c = util::SignedSaturatingCounter<6>{};
  }
  use_alt_on_na_ = util::SignedSaturatingCounter<4>{};
  for (std::uint8_t h = 0; h < 2; ++h) flush_hart(h);
}

void TagePredictor::flush_hart(std::uint8_t hart) {
  HartState& hs = harts_[hart & 1];
  std::fill(hs.history.begin(), hs.history.end(), 0);
  hs.head = 0;
  hs.path = 0;
  for (auto& f : hs.folded_index) f.value = 0;
  for (auto& f : hs.folded_tag) f.value = 0;
}

}  // namespace stbpu::tage
