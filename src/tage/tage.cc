#include "tage/tage.h"

namespace stbpu::tage {

// Legacy dynamic-dispatch instantiation (MappingProvider). Devirtualized
// instantiations over the concrete mapping-logic classes live in
// src/models/engine.cc.
template class TagePredictorT<>;

}  // namespace stbpu::tage
