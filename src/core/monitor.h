// Event monitors (paper §IV-B): model-specific registers holding counters
// initialised to OS-programmed thresholds. Every monitored event —
// branch misprediction or BTB eviction — decrements the current entity's
// counter; at zero the ST is re-randomized and the counter reloads.
// ST_TAGE designs add a separate threshold register for mispredictions
// produced by the tagged TAGE tables (paper §VII-B2); SKLCond does not,
// which is why it suffers more re-randomizations under SMT.
#pragma once

#include <cstdint>
#include <vector>

#include "bpu/types.h"
#include "core/secret_token.h"

namespace stbpu::core {

struct MonitorConfig {
  /// Γ_M — misprediction threshold. Default: r=0.05 of the BranchScope
  /// complexity C≈8.38e5 (paper §VII-A).
  std::uint64_t misprediction_threshold = 41'900;
  /// Γ_E — BTB eviction threshold. Default: r=0.05 of C≈5.3e5.
  std::uint64_t eviction_threshold = 26'500;
  /// Separate register for tagged-component mispredictions (0 = absent;
  /// tagged mispredictions then fall into the main counter).
  std::uint64_t tagged_misprediction_threshold = 0;

  /// Scale all thresholds by attack-difficulty factor r relative to the
  /// 50%-success attack complexity C (Γ = r · C, paper §VII-A).
  [[nodiscard]] static MonitorConfig from_difficulty(double r, bool separate_tagged) {
    MonitorConfig cfg;
    cfg.misprediction_threshold =
        std::uint64_t(r * 8.38e5) > 0 ? std::uint64_t(r * 8.38e5) : 1;
    cfg.eviction_threshold =
        std::uint64_t(r * 5.3e5) > 0 ? std::uint64_t(r * 5.3e5) : 1;
    cfg.tagged_misprediction_threshold =
        separate_tagged ? cfg.misprediction_threshold : 0;
    return cfg;
  }
};

class EventMonitor final : public bpu::IEventSink {
 public:
  EventMonitor(STManager* stm, const MonitorConfig& cfg) : stm_(stm), cfg_(cfg) {}

  void on_misprediction(const bpu::ExecContext& ctx, bool tagged_component) override {
    Counters& c = counters(ctx);
    if (tagged_component && cfg_.tagged_misprediction_threshold != 0) {
      if (--c.tagged_misp == 0) fire(ctx);
    } else {
      if (--c.misp == 0) fire(ctx);
    }
  }

  void on_btb_eviction(const bpu::ExecContext& ctx) override {
    Counters& c = counters(ctx);
    if (--c.evict == 0) fire(ctx);
  }

  [[nodiscard]] std::uint64_t rerandomizations() const noexcept { return fires_; }
  [[nodiscard]] const MonitorConfig& config() const noexcept { return cfg_; }

  /// Remaining budget before the next re-randomization for an entity —
  /// used by tests to verify attacks cannot outrun the monitor, and by the
  /// tenant service as the saved "monitor MSR" image across slot recycling.
  struct Remaining {
    std::uint64_t misp, evict, tagged;
    /// A freshly reloaded budget under `cfg` — what reload() would program.
    [[nodiscard]] static Remaining full(const MonitorConfig& cfg) {
      return {cfg.misprediction_threshold, cfg.eviction_threshold,
              cfg.tagged_misprediction_threshold != 0
                  ? cfg.tagged_misprediction_threshold
                  : ~std::uint64_t{0}};
    }
    friend bool operator==(const Remaining&, const Remaining&) = default;
  };
  [[nodiscard]] Remaining remaining(const bpu::ExecContext& ctx) {
    const Counters& c = counters(ctx);
    return {c.misp, c.evict, c.tagged_misp};
  }

  /// Per-entity threshold override (QoS): subsequent reloads of this slot
  /// use `cfg` instead of the monitor-wide config. Models the OS writing a
  /// tenant-specific Γ into the MSR on context switch; never called ⇒
  /// behavior is bit-identical to a config-free monitor.
  void set_config(const bpu::ExecContext& ctx, const MonitorConfig& cfg) {
    Counters& c = raw_counters(ctx);
    c.cfg = cfg;
    c.has_cfg = true;
  }

  /// OS restore of previously saved counters (the remaining() image taken
  /// when the entity was switched out). Marks the slot valid so no reload
  /// intervenes before the restored budget drains.
  void restore(const bpu::ExecContext& ctx, const Remaining& r) {
    Counters& c = raw_counters(ctx);
    c.misp = r.misp;
    c.evict = r.evict;
    c.tagged_misp = r.tagged;
    c.valid = true;
  }

 private:
  struct Counters {
    std::uint64_t misp = 0;
    std::uint64_t evict = 0;
    std::uint64_t tagged_misp = 0;
    MonitorConfig cfg;     ///< per-slot override, used when has_cfg
    bool has_cfg = false;
    bool valid = false;
  };

  Counters& counters(const bpu::ExecContext& ctx) {
    Counters& c = raw_counters(ctx);
    if (!c.valid) reload(c);
    return c;
  }

  /// Slot accessor without the lazy reload — set_config/restore must be
  /// able to program a slot before its first reload happens.
  Counters& raw_counters(const bpu::ExecContext& ctx) {
    // Kernel entity occupies slot 0; user pids shift up by one.
    const std::size_t slot = ctx.kernel ? 0 : std::size_t{ctx.pid} + 1;
    if (slot >= counters_.size()) counters_.resize(slot + 1);
    return counters_[slot];
  }

  void reload(Counters& c) {
    const MonitorConfig& cfg = c.has_cfg ? c.cfg : cfg_;
    c.misp = cfg.misprediction_threshold;
    c.evict = cfg.eviction_threshold;
    c.tagged_misp = cfg.tagged_misprediction_threshold != 0
                        ? cfg.tagged_misprediction_threshold
                        : ~std::uint64_t{0};
    c.valid = true;
  }

  void fire(const bpu::ExecContext& ctx) {
    ++fires_;
    stm_->rerandomize(ctx);
    reload(counters(ctx));
  }

  STManager* stm_;
  MonitorConfig cfg_;
  std::vector<Counters> counters_;
  std::uint64_t fires_ = 0;
};

}  // namespace stbpu::core
