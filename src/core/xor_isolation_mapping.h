// Lightweight XOR isolation mapping (rival arm; Zhao et al.,
// arxiv 2005.08183 — "Lightweight Isolation of Branch Predictors").
//
// The design goal is hardware lightness: instead of STBPU's 3-round keyed
// S/P networks on every lookup, each structure's index is the *baseline*
// deterministic index XORed with a per-security-domain constant, and every
// stored payload is XOR-encrypted/decrypted with the domain's φ (the same
// entry-encryption idea STBPU adopts for its target codec). The per-domain
// constants derive from the entity's secret token, so the existing
// monitor/re-randomization plumbing re-keys this arm exactly like STBPU.
//
// The XOR linearity is the scheme's honest weakness and is preserved
// deliberately: for two addresses a, b in one domain,
//   index(a) ^ index(b) == base_index(a) ^ base_index(b),
// i.e. the attacker-controlled collision structure of the baseline mapping
// survives inside each domain (and across domains up to one constant
// offset), which is exactly what the three-way attack scenarios measure
// against STBPU's nonlinear keyed remapping.
//
// XorIsolationMappingLogic is the non-virtual rendering consumed by the
// templated engine; XorIsolationMapping is the MappingProvider adapter at
// the API edge.
#pragma once

#include "bpu/mapping.h"
#include "core/secret_token.h"
#include "util/bits.h"

namespace stbpu::core {

class XorIsolationMappingLogic {
 public:
  explicit XorIsolationMappingLogic(STManager* stm) : stm_(stm) {}

  /// Per-domain mask material: a cheap splitmix64-style spread of the
  /// entity's ψ with a per-structure salt. Deliberately NOT the 3-round
  /// mix — one multiply + two shifts models the "a handful of XOR gates
  /// and a small keyed constant per structure" hardware budget of the
  /// scheme. The salt decorrelates the masks of different structures so a
  /// PHT observation does not directly reveal the BTB mask.
  [[nodiscard]] static constexpr std::uint64_t spread(std::uint32_t psi,
                                                      std::uint64_t salt) noexcept {
    std::uint64_t x = (std::uint64_t{psi} << 32 | psi) ^ salt;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
  }

  [[nodiscard]] bpu::BtbIndex btb_mode1(std::uint64_t ip,
                                        const bpu::ExecContext& ctx) const {
    const std::uint64_t m = spread(stm_->token(ctx).psi, kSaltBtb);
    bpu::BtbIndex out = base_.btb_mode1(ip, ctx);
    out.set ^= static_cast<std::uint32_t>(
        util::bits(m, 0, bpu::BaselineMappingLogic::kBtbSetBits));
    out.tag ^= util::bits(m, 16, bpu::BaselineMappingLogic::kBtbTagBits);
    return out;
  }

  [[nodiscard]] std::uint32_t btb_mode2_tag(std::uint64_t bhb,
                                            const bpu::ExecContext& ctx) const {
    const std::uint64_t m = spread(stm_->token(ctx).psi, kSaltBhb);
    return base_.btb_mode2_tag(bhb, ctx) ^
           static_cast<std::uint32_t>(util::bits(m, 0, bpu::kBtbMode2TagBits));
  }

  [[nodiscard]] std::uint32_t pht_index_1level(std::uint64_t ip,
                                               const bpu::ExecContext& ctx) const {
    return base_.pht_index_1level(ip, ctx) ^ pht_mask(ctx);
  }

  [[nodiscard]] std::uint32_t pht_index_2level(std::uint64_t ip, std::uint64_t ghr,
                                               const bpu::ExecContext& ctx) const {
    return base_.pht_index_2level(ip, ghr, ctx) ^ pht_mask(ctx);
  }

  [[nodiscard]] std::uint64_t encode_target(std::uint64_t target,
                                            const bpu::ExecContext& ctx) const {
    // Entry encryption: store 32 bits XORed with the domain's φ.
    return util::bits(target, 0, 32) ^ stm_->token(ctx).phi;
  }

  [[nodiscard]] std::uint64_t decode_target(std::uint64_t branch_ip, std::uint64_t stored,
                                            const bpu::ExecContext& ctx) const {
    // A payload written under another domain's φ decodes to a uniformly
    // random offset — the entry-encryption half of the isolation.
    const std::uint64_t lo = (stored ^ stm_->token(ctx).phi) & 0xFFFF'FFFFULL;
    return (branch_ip & 0xFFFF'0000'0000ULL) | lo;
  }

  [[nodiscard]] std::uint32_t tage_index(std::uint64_t ip, std::uint64_t folded_hist,
                                         unsigned table, unsigned index_bits,
                                         const bpu::ExecContext& ctx) const {
    const std::uint64_t m =
        spread(stm_->token(ctx).psi, kSaltTage + table);
    return base_.tage_index(ip, folded_hist, table, index_bits, ctx) ^
           static_cast<std::uint32_t>(util::bits(m, 0, index_bits));
  }

  [[nodiscard]] std::uint32_t tage_tag(std::uint64_t ip, std::uint64_t folded_hist,
                                       unsigned table, unsigned tag_bits,
                                       const bpu::ExecContext& ctx) const {
    const std::uint64_t m =
        spread(stm_->token(ctx).psi, kSaltTage + table);
    return base_.tage_tag(ip, folded_hist, table, tag_bits, ctx) ^
           static_cast<std::uint32_t>(util::bits(m, 24, tag_bits));
  }

  [[nodiscard]] std::uint32_t perceptron_row(std::uint64_t ip, unsigned row_bits,
                                             const bpu::ExecContext& ctx) const {
    const std::uint64_t m = spread(stm_->token(ctx).psi, kSaltPerceptron);
    return base_.perceptron_row(ip, row_bits, ctx) ^
           static_cast<std::uint32_t>(util::bits(m, 0, row_bits));
  }

  [[nodiscard]] STManager& tokens() const noexcept { return *stm_; }

 private:
  static constexpr std::uint64_t kSaltBtb = 0x42'5442;         // "BTB"
  static constexpr std::uint64_t kSaltBhb = 0x42'4842;         // "BHB"
  static constexpr std::uint64_t kSaltPht = 0x50'4854;         // "PHT"
  static constexpr std::uint64_t kSaltPerceptron = 0x50'4350;  // "PCP"
  static constexpr std::uint64_t kSaltTage = 0x54'4147'0000ULL;  // "TAG" + table

  [[nodiscard]] std::uint32_t pht_mask(const bpu::ExecContext& ctx) const {
    const std::uint64_t m = spread(stm_->token(ctx).psi, kSaltPht);
    return static_cast<std::uint32_t>(
        util::bits(m, 0, bpu::BaselineMappingLogic::kPhtIndexBits));
  }

  bpu::BaselineMappingLogic base_;
  STManager* stm_;
};

/// Virtual adapter over XorIsolationMappingLogic (API edge).
class XorIsolationMapping final
    : public bpu::MappingAdapterT<XorIsolationMappingLogic> {
 public:
  explicit XorIsolationMapping(STManager* stm)
      : MappingAdapterT(XorIsolationMappingLogic(stm)) {}

  [[nodiscard]] STManager& tokens() const noexcept { return logic_.tokens(); }
};

}  // namespace stbpu::core
