// CIBPU-style conflict-invisible mapping (rival arm; arxiv 2501.10983).
//
// Like STBPU, every index/tag is computed through the keyed remapping
// functions under a per-entity secret ψ, re-keyed by the same event
// monitor. The CIBPU twist is *conflict invisibility*: every BTB tag is
// widened with a per-security-domain fingerprint, so an entry installed by
// one domain can never produce a tag match for another — cross-domain BTB
// conflicts manifest only as capacity misses, never as reuse hits, which
// removes the signal the reuse-style attacks (Table I "reuse" rows) sample.
// What CIBPU does NOT do is encrypt payloads: stored targets are plaintext
// (truncate + function-5 re-extension, exactly the baseline codec), so any
// collision an attacker *does* force injects a usable target — the honest
// weakness the three-way attack scenarios measure against STBPU's φ codec.
//
// CibpuMappingLogic is the non-virtual rendering consumed by the templated
// engine; CibpuMapping is the thin MappingProvider adapter at the API edge.
#pragma once

#include "bpu/mapping.h"
#include "core/remap.h"
#include "core/secret_token.h"
#include "util/bits.h"

namespace stbpu::core {

class CibpuMappingLogic {
 public:
  /// Width of the per-domain tag fingerprint. Appended above the 8 keyed
  /// tag bits: total tag width 8 + 17 = 25 bits, well inside the BTB's
  /// 36-bit packed tag field (see bpu/btb.h) and clear of the low
  /// kBtbMode2TagBits the mode-2 path XORs into.
  static constexpr unsigned kDomainFingerprintBits = 17;

  explicit CibpuMappingLogic(STManager* stm) : stm_(stm) {}

  /// Fingerprint of the security domain: the identity on (pid, privilege).
  /// Keyless and public by design — invisibility comes from the *width*,
  /// not from secrecy. The identity (rather than a hash truncated below 17
  /// bits) makes it injective over the entire domain space, so cross-domain
  /// tag matches are structurally impossible, not merely improbable.
  [[nodiscard]] static constexpr std::uint32_t domain_fingerprint(
      const bpu::ExecContext& ctx) noexcept {
    return (static_cast<std::uint32_t>(ctx.pid) << 1) | (ctx.kernel ? 1 : 0);
  }

  [[nodiscard]] bpu::BtbIndex btb_mode1(std::uint64_t ip,
                                        const bpu::ExecContext& ctx) const {
    bpu::BtbIndex out = Remapper::r1(stm_->token(ctx).psi, ip);
    // Widen the keyed 8-bit tag with the domain fingerprint. The mode-2
    // combine only touches the low kBtbMode2TagBits, so the fingerprint
    // survives BHB-assisted lookups too.
    out.tag |= std::uint64_t{domain_fingerprint(ctx)} << Remapper::kBtbTagBits;
    return out;
  }

  [[nodiscard]] std::uint32_t btb_mode2_tag(std::uint64_t bhb,
                                            const bpu::ExecContext& ctx) const {
    return Remapper::r2(stm_->token(ctx).psi, bhb);
  }

  [[nodiscard]] std::uint32_t pht_index_1level(std::uint64_t ip,
                                               const bpu::ExecContext& ctx) const {
    return Remapper::r3(stm_->token(ctx).psi, ip);
  }

  [[nodiscard]] std::uint32_t pht_index_2level(std::uint64_t ip, std::uint64_t ghr,
                                               const bpu::ExecContext& ctx) const {
    return Remapper::r4(stm_->token(ctx).psi, ip, ghr);
  }

  [[nodiscard]] std::uint64_t encode_target(std::uint64_t target,
                                            const bpu::ExecContext&) const {
    // Plaintext payloads: CIBPU isolates via indexing only.
    return util::bits(target, 0, 32);
  }

  [[nodiscard]] std::uint64_t decode_target(std::uint64_t branch_ip, std::uint64_t stored,
                                            const bpu::ExecContext&) const {
    return (branch_ip & 0xFFFF'0000'0000ULL) | (stored & 0xFFFF'FFFFULL);
  }

  [[nodiscard]] std::uint32_t tage_index(std::uint64_t ip, std::uint64_t folded_hist,
                                         unsigned table, unsigned index_bits,
                                         const bpu::ExecContext& ctx) const {
    return Remapper::rt_index(stm_->token(ctx).psi, ip, folded_hist, table, index_bits);
  }

  [[nodiscard]] std::uint32_t tage_tag(std::uint64_t ip, std::uint64_t folded_hist,
                                       unsigned table, unsigned tag_bits,
                                       const bpu::ExecContext& ctx) const {
    return Remapper::rt_tag(stm_->token(ctx).psi, ip, folded_hist, table, tag_bits);
  }

  [[nodiscard]] std::uint32_t perceptron_row(std::uint64_t ip, unsigned row_bits,
                                             const bpu::ExecContext& ctx) const {
    return Remapper::rp(stm_->token(ctx).psi, ip, row_bits);
  }

  [[nodiscard]] STManager& tokens() const noexcept { return *stm_; }

 private:
  STManager* stm_;
};

/// Virtual adapter over CibpuMappingLogic (API edge).
class CibpuMapping final : public bpu::MappingAdapterT<CibpuMappingLogic> {
 public:
  explicit CibpuMapping(STManager* stm) : MappingAdapterT(CibpuMappingLogic(stm)) {}

  [[nodiscard]] STManager& tokens() const noexcept { return logic_.tokens(); }
};

}  // namespace stbpu::core
