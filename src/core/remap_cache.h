// Remap memo-cache: direct-mapped software caches over the keyed remapping
// functions R1/R2/R3/R4/Rt/Rp.
//
// Rationale: between two ψ re-keys the R functions are pure in their inputs
// — the same (ψ, address[, history]) tuple always produces the same output,
// so the 3-round S/P-box mix() network (src/core/remap.h) can be memoized.
// The trace workloads re-execute the same branch sites millions of times,
// so R1/R3/Rp (keyed by address only) hit almost always, and R4/Rt (keyed
// by address + history) hit whenever history patterns recur (loops). This
// is the dominant cost of STBPU simulation — CIBPU (Zhou et al., 2025)
// makes the same observation about keyed index functions.
//
// Correctness contract (bit-identical to direct Remapper calls):
//   * every entry is tagged with the complete input tuple AND the ψ that
//     produced it — a ψ re-randomization (Monitor-triggered or explicit)
//     can therefore never serve a stale value: the tag mismatches and the
//     entry recomputes. ψ does not depend on the hart, so SMT interleaving
//     needs no flushes either;
//   * the current entity's SecretToken is itself memoized; the cache
//     watches STManager::mutations() so any token change (re-key, explicit
//     write, share-group edit) refetches the token AND empties the value
//     caches before the next lookup;
//   * entries are additionally stamped with a generation counter.
//     invalidate_all() bumps it (O(1) — no array sweep), emptying the
//     cache; the engine also calls it on context switches (belt and
//     braces — the ψ tags already prevent cross-entity reuse).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bpu/mapping.h"
#include "bpu/types.h"
#include "core/remap.h"
#include "core/secret_token.h"
#include "util/bits.h"

namespace stbpu::core {

struct RemapCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t invalidations = 0;  ///< whole-cache generation bumps
  /// Per-function breakdown, indexed by Fn.
  enum Fn : unsigned { kR1, kR2, kR3, kR4, kRtIndex, kRtTag, kRp, kR34, kFnCount };
  std::uint64_t fn_hits[kFnCount] = {};
  std::uint64_t fn_misses[kFnCount] = {};

  // Batch probe/fill accounting (CachedStbpuMapping::precompute). Demand
  // hits/misses above stay pure demand-side counters: an entry filled by
  // precompute and later consumed counts one batch_fill here and one
  // demand hit there — which is exactly the attribution the --cache-stats
  // side-channel wants.
  std::uint64_t batch_requests = 0;    ///< PredictRequests offered
  std::uint64_t batch_rt_requests = 0; ///< TageRtRequests offered (precompute_rt)
  std::uint64_t batch_drops = 0;       ///< dropped (foreign ctx / no token yet)
  std::uint64_t batch_probe_hits = 0;  ///< probes already resident
  std::uint64_t batch_fills = 0;       ///< compacted misses computed + filled
  std::uint64_t fn_batch_fills[kFnCount] = {};
  std::uint64_t fn_batch_probe_hits[kFnCount] = {};

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }

  [[nodiscard]] static const char* fn_name(unsigned f) {
    constexpr const char* kNames[kFnCount] = {"r1",       "r2",     "r3", "r4",
                                              "rt_index", "rt_tag", "rp", "r34"};
    return f < kFnCount ? kNames[f] : "?";
  }
};

/// Non-virtual STBPU mapping with memoized R functions. Drop-in for
/// StbpuMappingLogic in the templated engine (same method set); the φ
/// target codec is a single XOR and is not cached.
class CachedStbpuMapping {
 public:
  /// Marks this mapping as memoized/pure-between-rekeys: templated
  /// predictors may reuse R outputs across the predict/train phases of one
  /// access (ψ is stable within an access — the monitor fires at its end).
  static constexpr bool kRemapAware = true;

  // Per-function capacities matched to key churn: address-keyed caches
  // (R1/R3/Rp) track the hot branch-site working set; history-keyed caches
  // (R4/Rt/R2) see a new key whenever the history pattern is new — their
  // reuse is the immediate predict→update / lookup→train double call plus
  // loop-periodic patterns, which small caches capture without streaming
  // dirty lines through the hardware L2. The fused R3+R4 cache is the
  // exception: it doubles as the staging buffer of the batch-precompute
  // window, so it must hold a whole precompute chunk with low self-
  // eviction (a fill that is overwritten before its demand access wastes a
  // batched mix AND pays the scalar recompute) — 4096 entries keeps the
  // per-key eviction probability under ~12% at the 512-record window.
  static constexpr unsigned kSiteBits = 12;   ///< R1/R3/Rp: 4096 entries
  static constexpr unsigned kHistBits = 10;   ///< R2/R4: 1024 entries
  static constexpr unsigned kR34Bits = 12;    ///< fused R3+R4: 4096 entries
  // Rt index/tag: 4096 entries each. Sized like r34_: these two caches
  // double as the staging buffer of the TAGE precompute window (64 records
  // x num_tables keys per cache per window = 384-640 keys), so 4096 slots
  // keep per-key self-eviction in the same ~10% band the r34_ sizing note
  // above establishes for the 512-record SKLCond window.
  static constexpr unsigned kTageBits = 12;

  explicit CachedStbpuMapping(STManager* stm)
      : stm_(stm),
        r1_(std::size_t{1} << kSiteBits),
        r2_(std::size_t{1} << kHistBits),
        r3_(std::size_t{1} << kSiteBits),
        r4_(std::size_t{1} << kHistBits),
        r34_(std::size_t{1} << kR34Bits),
        rt_index_(std::size_t{1} << kTageBits),
        rt_tag_(std::size_t{1} << kTageBits),
        rp_(std::size_t{1} << kSiteBits) {}

  // R1 output packs into 22 bits (9 set + 8 tag + 5 offset) — stored as
  // one word so the hot entry stays 24 bytes.
  [[nodiscard]] static constexpr std::uint32_t pack_r1(const bpu::BtbIndex& idx) noexcept {
    return idx.set | (static_cast<std::uint32_t>(idx.tag) << 9) | (idx.offset << 17);
  }
  [[nodiscard]] static constexpr bpu::BtbIndex unpack_r1(std::uint32_t packed) noexcept {
    return bpu::BtbIndex{.set = packed & 0x1FFu,
                         .tag = (packed >> 9) & 0xFFu,
                         .offset = packed >> 17};
  }

  [[nodiscard]] bpu::BtbIndex btb_mode1(std::uint64_t ip,
                                        const bpu::ExecContext& ctx) const {
    const std::uint32_t psi = token(ctx).psi;
    const std::uint32_t packed =
        memo1<kSiteBits, RemapCacheStats::kR1>(r1_, ip & bpu::kVirtualAddressMask, psi,
                         [psi](std::uint64_t k0) {
                           return pack_r1(Remapper::r1(psi, k0));
                         });
    return unpack_r1(packed);
  }

  [[nodiscard]] std::uint32_t btb_mode2_tag(std::uint64_t bhb,
                                            const bpu::ExecContext& ctx) const {
    const std::uint32_t psi = token(ctx).psi;
    return memo1<kHistBits, RemapCacheStats::kR2>(r2_, bhb, psi,
                            [psi](std::uint64_t k0) { return Remapper::r2(psi, k0); });
  }

  [[nodiscard]] std::uint32_t pht_index_1level(std::uint64_t ip,
                                               const bpu::ExecContext& ctx) const {
    const std::uint32_t psi = token(ctx).psi;
    return memo1<kSiteBits, RemapCacheStats::kR3>(r3_, ip & bpu::kVirtualAddressMask, psi,
                            [psi](std::uint64_t k0) { return Remapper::r3(psi, k0); });
  }

  [[nodiscard]] std::uint32_t pht_index_2level(std::uint64_t ip, std::uint64_t ghr,
                                               const bpu::ExecContext& ctx) const {
    const std::uint32_t psi = token(ctx).psi;
    // R4 consumes only kGhrBitsUsed GHR bits — key on the consumed slice so
    // equal-modulo-2^16 histories share an entry.
    return memo2<kHistBits, RemapCacheStats::kR4>(r4_, ip & bpu::kVirtualAddressMask,
                            util::bits(ghr, 0, Remapper::kGhrBitsUsed), psi,
                            [psi](std::uint64_t k0, std::uint64_t k1) {
                              return Remapper::r4(psi, k0, k1);
                            });
  }

  /// Fused R3+R4 probe — one lookup keyed (ip, GHR slice) returning both
  /// PHT indexes. The devirtualized SKLCond detects this method with
  /// `if constexpr` and replaces its two per-phase mapping calls; values
  /// are the identical R3/R4 outputs (on a miss R3 is fetched through its
  /// own cache, so only the truly fresh R4 pays a mix()).
  struct PhtIndexes {
    std::uint32_t i1, i2;
  };
  [[nodiscard]] PhtIndexes pht_indexes(std::uint64_t ip, std::uint64_t ghr,
                                       const bpu::ExecContext& ctx) const {
    const std::uint32_t psi = token(ctx).psi;
    const std::uint64_t k0 = ip & bpu::kVirtualAddressMask;
    const std::uint64_t k1 = util::bits(ghr, 0, Remapper::kGhrBitsUsed);
    const std::uint64_t packed = memo2<kR34Bits, RemapCacheStats::kR34>(
        r34_, k0, k1, psi, [&](std::uint64_t, std::uint64_t) {
          const std::uint32_t i1 =
              memo1<kSiteBits, RemapCacheStats::kR3>(r3_, k0, psi, [psi](std::uint64_t a) {
                return Remapper::r3(psi, a);
              });
          return static_cast<std::uint64_t>(i1) |
                 (static_cast<std::uint64_t>(Remapper::r4(psi, k0, k1)) << 32);
        });
    return {static_cast<std::uint32_t>(packed), static_cast<std::uint32_t>(packed >> 32)};
  }

  [[nodiscard]] std::uint64_t encode_target(std::uint64_t target,
                                            const bpu::ExecContext& ctx) const {
    return util::bits(target, 0, 32) ^ token(ctx).phi;
  }

  [[nodiscard]] std::uint64_t decode_target(std::uint64_t branch_ip, std::uint64_t stored,
                                            const bpu::ExecContext& ctx) const {
    const std::uint64_t lo = (stored ^ token(ctx).phi) & 0xFFFF'FFFFULL;
    return (branch_ip & 0xFFFF'0000'0000ULL) | lo;
  }

  [[nodiscard]] std::uint32_t tage_index(std::uint64_t ip, std::uint64_t folded_hist,
                                         unsigned table, unsigned index_bits,
                                         const bpu::ExecContext& ctx) const {
    const std::uint32_t psi = token(ctx).psi;
    // folded_hist occupies bits 0..55 (TAGE packs two folds + a path
    // slice), so table in bits 58.. and index_bits above the 48-bit ip keep
    // the composite key exact.
    const std::uint64_t k0 =
        (ip & bpu::kVirtualAddressMask) | (std::uint64_t{index_bits} << 48);
    const std::uint64_t k1 = folded_hist | (std::uint64_t{table} << 58);
    return memo2<kTageBits, RemapCacheStats::kRtIndex>(rt_index_, k0, k1, psi, [&](std::uint64_t, std::uint64_t) {
      return Remapper::rt_index(psi, ip, folded_hist, table, index_bits);
    });
  }

  [[nodiscard]] std::uint32_t tage_tag(std::uint64_t ip, std::uint64_t folded_hist,
                                       unsigned table, unsigned tag_bits,
                                       const bpu::ExecContext& ctx) const {
    const std::uint32_t psi = token(ctx).psi;
    const std::uint64_t k0 =
        (ip & bpu::kVirtualAddressMask) | (std::uint64_t{tag_bits} << 48);
    const std::uint64_t k1 = folded_hist | (std::uint64_t{table} << 58);
    return memo2<kTageBits, RemapCacheStats::kRtTag>(rt_tag_, k0, k1, psi, [&](std::uint64_t, std::uint64_t) {
      return Remapper::rt_tag(psi, ip, folded_hist, table, tag_bits);
    });
  }

  [[nodiscard]] std::uint32_t perceptron_row(std::uint64_t ip, unsigned row_bits,
                                             const bpu::ExecContext& ctx) const {
    const std::uint32_t psi = token(ctx).psi;
    const std::uint64_t k0 =
        (ip & bpu::kVirtualAddressMask) | (std::uint64_t{row_bits} << 48);
    return memo1<kSiteBits, RemapCacheStats::kRp>(rp_, k0, psi, [&](std::uint64_t) {
      return Remapper::rp(psi, ip, row_bits);
    });
  }

  // -------------------------------------------------------------------------
  // Batch probe/fill (the batch-native prediction API's mapping layer).
  // -------------------------------------------------------------------------

  /// Which R functions a precompute pass should warm — the engine sets this
  /// from its direction-predictor type at compile time (SKLCond reads the
  /// fused R3+R4 probe, the perceptron reads Rp, every branch reads R1).
  struct PrecomputeSelect {
    bool r1 = true;
    bool r34 = false;        ///< fused PHT indexes; consumes PredictRequest::ghr
    bool rp = false;         ///< perceptron row
    bool rt = false;         ///< TAGE Rt index/tag — served by the typed
                             ///< precompute_rt() overload (TageRtRequest
                             ///< carries the folded history PredictRequest
                             ///< cannot), this flag gates the engine's
                             ///< shadow fold-forward walk
    unsigned rp_row_bits = 0;
  };

  /// Lane width of the compacted miss list: enough independent mix chains
  /// to saturate the load ports (the mix_batch scenario measures the knee).
  static constexpr unsigned kMixLanes = 8;

  /// Probe the selected per-function caches for every request and compute
  /// the compacted miss list through detail::mix_batch — one batched kernel
  /// invocation per kMixLanes genuinely fresh keys instead of one
  /// latency-bound mix() per access. Entries filled here are bit-identical
  /// to what the demand path would compute (same Remapper extraction from
  /// the same mix), so warming is invisible to prediction statistics.
  ///
  /// Never fetches a secret token: STManager materializes tokens lazily
  /// from a shared PRNG, so creation *order* is architectural state a
  /// lookahead must not perturb. Requests for any entity other than the one
  /// the demand path has already established are dropped (counted), as is
  /// the whole span when a token mutation is pending — the demand path
  /// handles those cases exactly as before.
  void precompute(std::span<const bpu::PredictRequest> reqs,
                  const PrecomputeSelect& sel) const {
    stats_.batch_requests += reqs.size();
    if (!token_valid_ || stm_->mutations() != mutation_snapshot_) {
      stats_.batch_drops += reqs.size();
      return;
    }
    const std::uint32_t psi = token_.psi;
    MissLanes r1l, r34l, rpl;
    for (const bpu::PredictRequest& q : reqs) {
      if (q.ctx.pid != token_pid_ || q.ctx.kernel != token_kernel_) {
        ++stats_.batch_drops;
        continue;
      }
      const std::uint64_t a = q.ip & bpu::kVirtualAddressMask;
      if (sel.r1) {
        const std::size_t s = slot1<kSiteBits>(a);
        const Entry1<std::uint32_t>& e = r1_[s];
        if ((e.gen == generation_ && e.psi == psi && e.k0 == a) ||
            r1l.pending(a, 0, s)) {
          ++stats_.batch_probe_hits;
          ++stats_.fn_batch_probe_hits[RemapCacheStats::kR1];
        } else {
          r1l.add(a, 0, a, 0, s);
          if (r1l.n == kMixLanes) flush_r1(r1l, psi);
        }
      }
      if (q.type == bpu::BranchType::kConditional) {
        if (sel.r34) {
          const std::uint64_t g = util::bits(q.ghr, 0, Remapper::kGhrBitsUsed);
          const std::size_t s = slot2<kR34Bits>(a, g);
          const Entry2<std::uint64_t>& e = r34_[s];
          if ((e.gen == generation_ && e.psi == psi && e.k0 == a && e.k1 == g) ||
              r34l.pending(a, g, s)) {
            ++stats_.batch_probe_hits;
            ++stats_.fn_batch_probe_hits[RemapCacheStats::kR34];
          } else {
            r34l.add(a, g, a, g, s);
            if (r34l.n == kMixLanes) flush_r34(r34l, psi);
          }
        }
        if (sel.rp) {
          const std::uint64_t k0 =
              a | (std::uint64_t{sel.rp_row_bits} << 48);
          const std::size_t s = slot1<kSiteBits>(k0);
          const Entry1<std::uint32_t>& e = rp_[s];
          if ((e.gen == generation_ && e.psi == psi && e.k0 == k0) ||
              rpl.pending(k0, 0, s)) {
            ++stats_.batch_probe_hits;
            ++stats_.fn_batch_probe_hits[RemapCacheStats::kRp];
          } else {
            rpl.add(a, 0, k0, 0, s);
            if (rpl.n == kMixLanes) flush_rp(rpl, psi, sel.rp_row_bits);
          }
        }
      }
    }
    flush_r1(r1l, psi);
    flush_r34(r34l, psi);
    flush_rp(rpl, psi, sel.rp_row_bits);
  }

  /// TAGE Rt batch probe/fill — the per-table sibling of precompute().
  /// Each request keys ONE tagged table's index and tag under the current
  /// ψ; the engine's shadow fold-forward walk emits num_tables of these per
  /// lookahead branch. Probes mirror the tage_index/tage_tag demand keys
  /// exactly ((ip, out_bits) low word, (folded, table) high word), misses
  /// compact into two lanes (index and tag carry different tweaks, so they
  /// batch separately), and fills are bit-identical to a demand compute.
  /// Token discipline is identical to precompute(): never fetches a token,
  /// drops foreign-context requests and whole spans under pending mutation.
  void precompute_rt(std::span<const bpu::TageRtRequest> reqs, unsigned index_bits,
                     unsigned tag_bits) const {
    stats_.batch_rt_requests += reqs.size();
    if (!token_valid_ || stm_->mutations() != mutation_snapshot_) {
      stats_.batch_drops += reqs.size();
      return;
    }
    const std::uint32_t psi = token_.psi;
    RtLanes il, tl;
    for (const bpu::TageRtRequest& q : reqs) {
      if (q.ctx.pid != token_pid_ || q.ctx.kernel != token_kernel_) {
        ++stats_.batch_drops;
        continue;
      }
      // No probe-before-fill here, unlike precompute(): TAGE folds change
      // on every branch, so measured probe-hit rates are ~0.2% — the two
      // extra random cache-line reads per request cost more than the
      // redundant mixes they avoid. Fills are bit-identical recomputes, so
      // overwriting a warm (or duplicate in-window) entry is harmless.
      //
      // The lanes carry only (address, folded|table): the packed folded
      // keys occupy bits 0..55 and table<<58 bits 58..61, so the demand
      // path's mix operand `folded ^ (table << 58)` equals the cache key
      // `folded | (table << 58)` — one combined word serves as both, and
      // flush_rt reconstructs k0 and the slot from it.
      const std::uint64_t a = q.ip & bpu::kVirtualAddressMask;
      const std::uint64_t tbl = std::uint64_t{q.table} << 58;
      il.add(a, q.folded_index | tbl);
      if (il.n == kMixLanes) flush_rt(il, psi, index_bits, /*is_tag=*/false);
      tl.add(a, q.folded_tag | tbl);
      if (tl.n == kMixLanes) flush_rt(tl, psi, tag_bits, /*is_tag=*/true);
    }
    flush_rt(il, psi, index_bits, /*is_tag=*/false);
    flush_rt(tl, psi, tag_bits, /*is_tag=*/true);
  }

  /// Empty every cached entry (O(1) generation bump). Called by the engine
  /// on context switches; token mutations are also caught automatically.
  void invalidate_all() const {
    ++stats_.invalidations;
    if (++generation_ == 0) {
      // 2^32 bumps wrapped the counter: entries stamped in the previous
      // epoch would otherwise read as current again and serve stale values.
      // Hard-clear every table once (the only non-O(1) invalidation, once
      // per 4G bumps) and restart at 1 so gen 0 stays the never-filled
      // sentinel.
      hard_clear();
      generation_ = 1;
    }
  }

  /// Test hook: place the generation counter near the wrap point so the
  /// wraparound sweep is reachable without 2^32 invalidations. 0 is mapped
  /// to 1 (the sentinel must stay unreachable).
  void debug_set_generation(std::uint32_t gen) const {
    generation_ = gen == 0 ? 1 : gen;
  }
  [[nodiscard]] std::uint32_t debug_generation() const noexcept { return generation_; }

  [[nodiscard]] const RemapCacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] STManager& tokens() const noexcept { return *stm_; }

 private:
  template <class V>
  struct Entry1 {
    std::uint64_t k0 = 0;
    std::uint32_t psi = 0;
    std::uint32_t gen = 0;  ///< 0 = never filled (generation_ starts at 1)
    V value{};
  };
  template <class V>
  struct Entry2 {
    std::uint64_t k0 = 0;
    std::uint64_t k1 = 0;
    std::uint32_t psi = 0;
    std::uint32_t gen = 0;
    V value{};
  };

  /// Current entity's SecretToken, memoized per (pid, kernel). Any
  /// STManager mutation (re-key, explicit write, share edit) refetches and
  /// empties the value caches — stale ψ or φ can never be served.
  [[nodiscard]] const SecretToken& token(const bpu::ExecContext& ctx) const {
    const std::uint64_t mut = stm_->mutations();
    if (mut != mutation_snapshot_) {
      mutation_snapshot_ = mut;
      token_valid_ = false;
      invalidate_all();
    }
    if (!token_valid_ || ctx.pid != token_pid_ || ctx.kernel != token_kernel_) {
      token_ = stm_->token(ctx);
      token_pid_ = ctx.pid;
      token_kernel_ = ctx.kernel;
      token_valid_ = true;
    }
    return token_;
  }

  template <unsigned Bits>
  static std::size_t slot1(std::uint64_t k0) noexcept {
    return static_cast<std::size_t>((k0 * 0x9E3779B97F4A7C15ULL) >> (64 - Bits));
  }
  template <unsigned Bits>
  static std::size_t slot2(std::uint64_t k0, std::uint64_t k1) noexcept {
    const std::uint64_t h = (k0 * 0x9E3779B97F4A7C15ULL) ^ (k1 * 0xC2B2AE3D27D4EB4FULL);
    return static_cast<std::size_t>(h >> (64 - Bits));
  }

  /// Compacted miss list of one precompute pass: mix inputs plus the entry
  /// keys/slots needed to fill the cache once the batched kernel returns.
  struct MissLanes {
    std::uint64_t lo[kMixLanes];
    std::uint64_t hi[kMixLanes];
    std::uint64_t k0[kMixLanes];
    std::uint64_t k1[kMixLanes];
    std::size_t slot[kMixLanes];
    unsigned n = 0;

    void add(std::uint64_t lo_v, std::uint64_t hi_v, std::uint64_t k0_v,
             std::uint64_t k1_v, std::size_t slot_v) noexcept {
      lo[n] = lo_v;
      hi[n] = hi_v;
      k0[n] = k0_v;
      k1[n] = k1_v;
      slot[n] = slot_v;
      ++n;
    }

    /// True when the same key is already queued (cache entries only fill
    /// at flush, so a repeated key — e.g. one hot branch saturating the
    /// GHR slice — would otherwise probe-miss per occurrence and burn a
    /// mix lane recomputing the identical value). n <= kMixLanes keeps
    /// this a trivial scan, and it only runs on the probe-miss path.
    [[nodiscard]] bool pending(std::uint64_t k0_v, std::uint64_t k1_v,
                               std::size_t slot_v) const noexcept {
      for (unsigned i = 0; i < n; ++i) {
        if (slot[i] == slot_v && k0[i] == k0_v && k1[i] == k1_v) return true;
      }
      return false;
    }
  };

  /// Minimal lane pair for the Rt batch: the combined (folded | table<<58)
  /// word doubles as mix operand and exact cache key (disjoint bit fields,
  /// see precompute_rt), so nothing else needs staging per miss.
  struct RtLanes {
    std::uint64_t lo[kMixLanes];
    std::uint64_t hi[kMixLanes];
    unsigned n = 0;

    void add(std::uint64_t lo_v, std::uint64_t hi_v) noexcept {
      lo[n] = lo_v;
      hi[n] = hi_v;
      ++n;
    }
  };

  /// Mix every pending lane under one (ψ, tweak): full batches go through
  /// the interleaved kernel, remainders through scalar mix() — identical
  /// outputs either way, so fills are indistinguishable from demand fills.
  template <std::uint64_t Tweak>
  void mix_lanes(const std::uint64_t (&lo)[kMixLanes], const std::uint64_t (&hi)[kMixLanes],
                 unsigned n, std::uint32_t psi, std::uint64_t (&m)[kMixLanes]) const {
    if (n == kMixLanes) {
      // Dispatches to the AVX2 nibble-shuffle kernel when the host has it,
      // else byte-LUT lanes — NOT the 16-bit LUT: in isolation LUT16
      // batches are ~28% faster (mix_batch scenario), but their 256 KiB of
      // tables evict the predictor/PHT working set in-context, while the
      // byte LUTs stay resident in 512 bytes and the AVX2 S-boxes live in
      // registers outright.
      detail::mix_batch_dispatch<kMixLanes>(lo, hi, psi, Tweak, m);
    } else {
      for (unsigned i = 0; i < n; ++i) {
        m[i] = detail::mix(lo[i], hi[i], psi, Tweak);
      }
    }
  }
  template <std::uint64_t Tweak>
  void mix_lanes(const MissLanes& l, std::uint32_t psi,
                 std::uint64_t (&m)[kMixLanes]) const {
    mix_lanes<Tweak>(l.lo, l.hi, l.n, psi, m);
  }

  void flush_r1(MissLanes& l, std::uint32_t psi) const {
    if (l.n == 0) return;
    std::uint64_t m[kMixLanes];
    mix_lanes<Remapper::kTweakR1>(l, psi, m);
    for (unsigned i = 0; i < l.n; ++i) {
      Entry1<std::uint32_t>& e = r1_[l.slot[i]];
      e.k0 = l.k0[i];
      e.psi = psi;
      e.gen = generation_;
      e.value = pack_r1(Remapper::r1_from_mix(m[i]));
    }
    stats_.batch_fills += l.n;
    stats_.fn_batch_fills[RemapCacheStats::kR1] += l.n;
    l.n = 0;
  }

  void flush_r34(MissLanes& l, std::uint32_t psi) const {
    if (l.n == 0) return;
    std::uint64_t m[kMixLanes];
    mix_lanes<Remapper::kTweakR4>(l, psi, m);
    for (unsigned i = 0; i < l.n; ++i) {
      // Mirror the fused demand miss: R3 comes through its own (address-
      // keyed, almost-always-hot) cache; only the genuinely fresh R4 was
      // worth a batched mix lane. Probed inline rather than via memo1 so
      // the demand-side hit/miss counters stay pure demand attribution —
      // an R3 computed here counts as a batch fill, not a demand miss.
      const std::uint64_t a = l.k0[i];
      Entry1<std::uint32_t>& r3e = r3_[slot1<kSiteBits>(a)];
      std::uint32_t i1;
      if (r3e.gen == generation_ && r3e.psi == psi && r3e.k0 == a) {
        i1 = r3e.value;
      } else {
        i1 = Remapper::r3(psi, a);
        r3e.k0 = a;
        r3e.psi = psi;
        r3e.gen = generation_;
        r3e.value = i1;
        ++stats_.batch_fills;
        ++stats_.fn_batch_fills[RemapCacheStats::kR3];
      }
      Entry2<std::uint64_t>& e = r34_[l.slot[i]];
      e.k0 = a;
      e.k1 = l.k1[i];
      e.psi = psi;
      e.gen = generation_;
      e.value = static_cast<std::uint64_t>(i1) |
                (static_cast<std::uint64_t>(Remapper::pht_from_mix(m[i])) << 32);
    }
    stats_.batch_fills += l.n;
    stats_.fn_batch_fills[RemapCacheStats::kR34] += l.n;
    l.n = 0;
  }

  void flush_rp(MissLanes& l, std::uint32_t psi, unsigned row_bits) const {
    if (l.n == 0) return;
    std::uint64_t m[kMixLanes];
    mix_lanes<Remapper::kTweakRp>(l, psi, m);
    for (unsigned i = 0; i < l.n; ++i) {
      Entry1<std::uint32_t>& e = rp_[l.slot[i]];
      e.k0 = l.k0[i];
      e.psi = psi;
      e.gen = generation_;
      e.value = Remapper::rp_from_mix(m[i], row_bits);
    }
    stats_.batch_fills += l.n;
    stats_.fn_batch_fills[RemapCacheStats::kRp] += l.n;
    l.n = 0;
  }

  void flush_rt(RtLanes& l, std::uint32_t psi, unsigned out_bits, bool is_tag) const {
    if (l.n == 0) return;
    std::uint64_t m[kMixLanes];
    if (is_tag) {
      mix_lanes<Remapper::kTweakRtTag>(l.lo, l.hi, l.n, psi, m);
    } else {
      mix_lanes<Remapper::kTweakRtIndex>(l.lo, l.hi, l.n, psi, m);
    }
    std::vector<Entry2<std::uint32_t>>& table = is_tag ? rt_tag_ : rt_index_;
    const std::uint64_t bits_hi = std::uint64_t{out_bits} << 48;
    for (unsigned i = 0; i < l.n; ++i) {
      const std::uint64_t k0 = l.lo[i] | bits_hi;
      const std::uint64_t k1 = l.hi[i];
      Entry2<std::uint32_t>& e = table[slot2<kTageBits>(k0, k1)];
      e.k0 = k0;
      e.k1 = k1;
      e.psi = psi;
      e.gen = generation_;
      e.value = is_tag ? Remapper::rt_tag_from_mix(m[i], out_bits)
                       : Remapper::rt_index_from_mix(m[i], out_bits);
    }
    stats_.batch_fills += l.n;
    stats_.fn_batch_fills[is_tag ? RemapCacheStats::kRtTag : RemapCacheStats::kRtIndex] +=
        l.n;
    l.n = 0;
  }

  /// Wipe the generation stamp of every entry in every table — only the
  /// generation-wrap path pays this sweep.
  void hard_clear() const {
    const auto clear = [](auto& table) {
      for (auto& e : table) e.gen = 0;
    };
    clear(r1_);
    clear(r2_);
    clear(r3_);
    clear(r4_);
    clear(r34_);
    clear(rt_index_);
    clear(rt_tag_);
    clear(rp_);
  }

  template <unsigned Bits, RemapCacheStats::Fn F, class V, class Fn>
  V memo1(std::vector<Entry1<V>>& table, std::uint64_t k0, std::uint32_t psi,
          Fn&& compute) const {
    Entry1<V>& e = table[slot1<Bits>(k0)];
    if (e.gen == generation_ && e.psi == psi && e.k0 == k0) {
      ++stats_.hits;
      ++stats_.fn_hits[F];
      return e.value;
    }
    ++stats_.misses;
    ++stats_.fn_misses[F];
    e.k0 = k0;
    e.psi = psi;
    e.gen = generation_;
    e.value = compute(k0);
    return e.value;
  }

  template <unsigned Bits, RemapCacheStats::Fn F, class V, class Fn>
  V memo2(std::vector<Entry2<V>>& table, std::uint64_t k0, std::uint64_t k1,
          std::uint32_t psi, Fn&& compute) const {
    Entry2<V>& e = table[slot2<Bits>(k0, k1)];
    if (e.gen == generation_ && e.psi == psi && e.k0 == k0 && e.k1 == k1) {
      ++stats_.hits;
      ++stats_.fn_hits[F];
      return e.value;
    }
    ++stats_.misses;
    ++stats_.fn_misses[F];
    e.k0 = k0;
    e.k1 = k1;
    e.psi = psi;
    e.gen = generation_;
    e.value = compute(k0, k1);
    return e.value;
  }

  STManager* stm_;
  mutable std::uint32_t generation_ = 1;
  mutable std::uint64_t mutation_snapshot_ = 0;
  mutable SecretToken token_{};
  mutable std::uint16_t token_pid_ = 0;
  mutable bool token_kernel_ = false;
  mutable bool token_valid_ = false;
  mutable RemapCacheStats stats_;
  mutable std::vector<Entry1<std::uint32_t>> r1_;  ///< packed set|tag|offset
  mutable std::vector<Entry1<std::uint32_t>> r2_;
  mutable std::vector<Entry1<std::uint32_t>> r3_;
  mutable std::vector<Entry2<std::uint32_t>> r4_;
  mutable std::vector<Entry2<std::uint64_t>> r34_;  ///< fused (R3 | R4<<32)
  mutable std::vector<Entry2<std::uint32_t>> rt_index_;
  mutable std::vector<Entry2<std::uint32_t>> rt_tag_;
  mutable std::vector<Entry1<std::uint32_t>> rp_;
};

}  // namespace stbpu::core
