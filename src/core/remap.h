// The keyed remapping functions R1..R4, Rt, Rp of Table II.
//
// Each is the software rendering of a hardware circuit found by the
// generator in src/remapgen/: alternating substitution layers (PRESENT and
// SPONGENT 4-bit S-boxes, applied nibble-parallel), permutation layers
// (fixed wire crossings, realised branch-free as delta swaps + rotations),
// and XOR compression layers — no multiplies, no table-driven rounds, so
// the transistor-count argument of §V-A (critical path ≤ 45 transistors,
// single cycle) carries over. The functions consume the full 48-bit virtual
// address (crucial against same-address-space attacks [78]) plus the 32-bit
// ψ key, and differ from one another by fixed round tweaks.
//
// tests/core/remap_test.cc validates the same C2 (uniformity) and C3
// (avalanche) criteria the generator enforces, over every R function.
#pragma once

#include <array>
#include <cstdint>

#include "bpu/mapping.h"
#include "util/bits.h"

namespace stbpu::core {

namespace detail {

/// PRESENT S-box [10] — optimal 4-bit nonlinearity, trivially hardware-able.
inline constexpr std::array<std::uint8_t, 16> kPresentSbox = {
    0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD, 0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2};
/// SPONGENT S-box [11].
inline constexpr std::array<std::uint8_t, 16> kSpongentSbox = {
    0xE, 0xD, 0xB, 0x0, 0x2, 0x1, 0x4, 0xF, 0x7, 0xA, 0x8, 0x5, 0x9, 0xC, 0x3, 0x6};

/// Expand a 4-bit S-box into a byte-level LUT (two parallel S-boxes), so a
/// 64-bit substitution layer is eight table reads.
consteval std::array<std::uint8_t, 256> expand_sbox(
    const std::array<std::uint8_t, 16>& s) {
  std::array<std::uint8_t, 256> t{};
  for (unsigned i = 0; i < 256; ++i) {
    t[i] = static_cast<std::uint8_t>((s[i >> 4] << 4) | s[i & 0xF]);
  }
  return t;
}

inline constexpr auto kPresentByteLut = expand_sbox(kPresentSbox);
inline constexpr auto kSpongentByteLut = expand_sbox(kSpongentSbox);

template <const std::array<std::uint8_t, 256>& Lut>
constexpr std::uint64_t sbox_layer(std::uint64_t x) noexcept {
  std::uint64_t r = 0;
  for (unsigned i = 0; i < 8; ++i) {
    r |= static_cast<std::uint64_t>(Lut[(x >> (8 * i)) & 0xFF]) << (8 * i);
  }
  return r;
}

/// Delta swap: exchanges the bit groups selected by `m` with the groups `s`
/// positions up — pure wiring in hardware, three gates' worth in software.
constexpr std::uint64_t delta_swap(std::uint64_t x, std::uint64_t m, unsigned s) noexcept {
  const std::uint64_t t = ((x >> s) ^ x) & m;
  return x ^ t ^ (t << s);
}

/// Fixed permutation layers (P-boxes) — bit scrambles chosen by the
/// generator; two distinct wirings give inter-nibble diffusion.
constexpr std::uint64_t pbox_a(std::uint64_t x) noexcept {
  x = delta_swap(x, 0x00000000FFFF0000ULL, 32);
  x = delta_swap(x, 0x0000FF000000FF00ULL, 8);
  x = delta_swap(x, 0x00F000F000F000F0ULL, 4);
  return util::rotl64(x, 29);
}
constexpr std::uint64_t pbox_b(std::uint64_t x) noexcept {
  x = delta_swap(x, 0x00000000F0F0F0F0ULL, 28);
  x = delta_swap(x, 0x0000CCCC0000CCCCULL, 14);
  x = delta_swap(x, 0x0A0A0A0A0A0A0A0AULL, 3);
  return util::rotl64(x, 17);
}

/// Sigma diffusion layer: each output bit XORs three state bits at fixed
/// rotational offsets — pure wiring plus one 3-input XOR gate per bit in
/// hardware (2 gate levels), and the cross-nibble diffusion the 4-bit
/// S-boxes cannot provide on their own. Offsets are coprime to 64 so the
/// dependency graph reaches every bit within two applications.
constexpr std::uint64_t sigma(std::uint64_t x, unsigned a, unsigned b) noexcept {
  return x ^ util::rotl64(x, a) ^ util::rotl64(x, b);
}

/// Core keyed compression: up to 128 input bits (ψ-spread ⊕ tweak as the
/// round keys, `lo`/`hi` as data) → 64 mixed bits. Three S/P/σ rounds — the
/// depth Figure 2's winning R1 circuit has.
constexpr std::uint64_t mix(std::uint64_t lo, std::uint64_t hi, std::uint32_t psi,
                            std::uint64_t tweak) noexcept {
  const std::uint64_t k =
      (static_cast<std::uint64_t>(psi) << 32 | psi) ^ tweak;
  std::uint64_t x = lo ^ util::rotl64(hi, 21) ^ k;
  x = sbox_layer<kPresentByteLut>(x);
  x = sigma(pbox_a(x), 19, 43);
  x ^= util::rotl64(hi, 47) ^ util::rotl64(k, 13);
  x = sbox_layer<kSpongentByteLut>(x);
  x = sigma(pbox_b(x), 11, 50);
  x ^= util::rotl64(k, 37);
  x = sbox_layer<kPresentByteLut>(x);
  x = sigma(x, 29, 39);
  // Final XOR compression (C-S box row): fold the halves together.
  return x ^ (x >> 31);
}

}  // namespace detail

/// Stateless keyed remapping per Table II. Per-function tweak constants make
/// R1..R4/Rt/Rp mutually independent even under one ψ.
class Remapper {
 public:
  // Table II output geometry (baseline Skylake-like structures).
  static constexpr unsigned kBtbSetBits = 9;
  static constexpr unsigned kBtbTagBits = 8;
  static constexpr unsigned kBtbOffsetBits = 5;
  static constexpr unsigned kPhtIndexBits = 14;
  static constexpr unsigned kGhrBitsUsed = 16;  ///< STBPU consumes 16 GHR bits

  /// R1(80 ↦ 22): ψ + 48-bit address → BTB set/tag/offset.
  [[nodiscard]] static bpu::BtbIndex r1(std::uint32_t psi, std::uint64_t ip) noexcept {
    const std::uint64_t m =
        detail::mix(ip & bpu::kVirtualAddressMask, 0, psi, 0xB7E151628AED2A6AULL);
    // Tag stays in the full 64-bit BtbIndex field (already masked to
    // kBtbTagBits by util::bits) — same width handling as r1_scaled, no
    // narrow-then-rewiden cast.
    return bpu::BtbIndex{
        .set = static_cast<std::uint32_t>(util::bits(m, 0, kBtbSetBits)),
        .tag = util::bits(m, kBtbSetBits, kBtbTagBits),
        .offset = static_cast<std::uint32_t>(
            util::bits(m, kBtbSetBits + kBtbTagBits, kBtbOffsetBits)),
    };
  }

  /// R2(90 ↦ 8): ψ + 58-bit BHB → mode-2 tag component.
  [[nodiscard]] static std::uint32_t r2(std::uint32_t psi, std::uint64_t bhb) noexcept {
    const std::uint64_t m = detail::mix(bhb, bhb >> 32, psi, 0x9E3779B97F4A7C15ULL);
    return static_cast<std::uint32_t>(util::bits(m, 0, kBtbTagBits));
  }

  /// R3(80 ↦ 14): ψ + 48-bit address → PHT 1-level index.
  [[nodiscard]] static std::uint32_t r3(std::uint32_t psi, std::uint64_t ip) noexcept {
    const std::uint64_t m =
        detail::mix(ip & bpu::kVirtualAddressMask, 0, psi, 0x3C6EF372FE94F82BULL);
    return static_cast<std::uint32_t>(util::bits(m, 0, kPhtIndexBits));
  }

  /// R4(96 ↦ 14): ψ + 16-bit GHR + 48-bit address → PHT 2-level index.
  [[nodiscard]] static std::uint32_t r4(std::uint32_t psi, std::uint64_t ip,
                                        std::uint64_t ghr) noexcept {
    const std::uint64_t m = detail::mix(ip & bpu::kVirtualAddressMask,
                                        util::bits(ghr, 0, kGhrBitsUsed), psi,
                                        0xA54FF53A5F1D36F1ULL);
    return static_cast<std::uint32_t>(util::bits(m, 0, kPhtIndexBits));
  }

  /// Rt(80↑ ↦ 25): ψ + 48-bit address + folded geometric history →
  /// per-table TAGE index/tag (10/8 bits for the 8KB config, 13/12 for 64KB).
  [[nodiscard]] static std::uint32_t rt_index(std::uint32_t psi, std::uint64_t ip,
                                              std::uint64_t folded_hist, unsigned table,
                                              unsigned index_bits) noexcept {
    const std::uint64_t m =
        detail::mix(ip & bpu::kVirtualAddressMask,
                    folded_hist ^ (std::uint64_t{table} << 58), psi,
                    0x510E527FADE682D1ULL);
    return static_cast<std::uint32_t>(util::bits(m, 0, index_bits));
  }
  [[nodiscard]] static std::uint32_t rt_tag(std::uint32_t psi, std::uint64_t ip,
                                            std::uint64_t folded_hist, unsigned table,
                                            unsigned tag_bits) noexcept {
    const std::uint64_t m =
        detail::mix(ip & bpu::kVirtualAddressMask,
                    folded_hist ^ (std::uint64_t{table} << 58), psi,
                    0x9B05688C2B3E6C1FULL);
    // Tag drawn from a disjoint bit window so index/tag are not correlated.
    return static_cast<std::uint32_t>(util::bits(m, 14, tag_bits));
  }

  /// Rp(80 ↦ 10): ψ + 48-bit address → perceptron row.
  [[nodiscard]] static std::uint32_t rp(std::uint32_t psi, std::uint64_t ip,
                                        unsigned row_bits) noexcept {
    const std::uint64_t m =
        detail::mix(ip & bpu::kVirtualAddressMask, 0, psi, 0x1F83D9ABFB41BD6BULL);
    return static_cast<std::uint32_t>(util::bits(m, 0, row_bits));
  }

  /// R1 with parameterized output geometry — used by the scaled-down
  /// structures that validate the §VI equations empirically (attack cost
  /// scales with I·T·O, so experiments shrink the structure, measure, and
  /// compare against the closed forms at both scales).
  [[nodiscard]] static bpu::BtbIndex r1_scaled(std::uint32_t psi, std::uint64_t ip,
                                               unsigned set_bits, unsigned tag_bits,
                                               unsigned offset_bits) noexcept {
    const std::uint64_t m =
        detail::mix(ip & bpu::kVirtualAddressMask, 0, psi, 0xB7E151628AED2A6AULL);
    return bpu::BtbIndex{
        .set = static_cast<std::uint32_t>(util::bits(m, 0, set_bits)),
        .tag = util::bits(m, set_bits, tag_bits),
        .offset = static_cast<std::uint32_t>(
            util::bits(m, set_bits + tag_bits, offset_bits)),
    };
  }
};

}  // namespace stbpu::core
