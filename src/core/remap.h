// The keyed remapping functions R1..R4, Rt, Rp of Table II.
//
// Each is the software rendering of a hardware circuit found by the
// generator in src/remapgen/: alternating substitution layers (PRESENT and
// SPONGENT 4-bit S-boxes, applied nibble-parallel), permutation layers
// (fixed wire crossings, realised branch-free as delta swaps + rotations),
// and XOR compression layers — no multiplies, no table-driven rounds, so
// the transistor-count argument of §V-A (critical path ≤ 45 transistors,
// single cycle) carries over. The functions consume the full 48-bit virtual
// address (crucial against same-address-space attacks [78]) plus the 32-bit
// ψ key, and differ from one another by fixed round tweaks.
//
// tests/core/remap_test.cc validates the same C2 (uniformity) and C3
// (avalanche) criteria the generator enforces, over every R function.
#pragma once

#include <array>
#include <cstdint>

#include "bpu/mapping.h"
#include "util/bits.h"

// The AVX2 rendering of the batched mix kernel: vpshufb IS the hardware
// S-box (a 16-entry 4-bit table lookup per byte, in registers, no memory),
// so a full 64-bit substitution layer is two shuffles + nibble glue across
// four lanes at once — the software analogue of the paper's parallel S-box
// rows. Functions carry the target("avx2") attribute and are dispatched at
// runtime, so the binary stays baseline-x86-64 portable.
#if defined(__x86_64__) && defined(__GNUC__)
#define STBPU_MIX_AVX2 1
#include <immintrin.h>
#endif

namespace stbpu::core {

namespace detail {

/// PRESENT S-box [10] — optimal 4-bit nonlinearity, trivially hardware-able.
inline constexpr std::array<std::uint8_t, 16> kPresentSbox = {
    0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD, 0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2};
/// SPONGENT S-box [11].
inline constexpr std::array<std::uint8_t, 16> kSpongentSbox = {
    0xE, 0xD, 0xB, 0x0, 0x2, 0x1, 0x4, 0xF, 0x7, 0xA, 0x8, 0x5, 0x9, 0xC, 0x3, 0x6};

/// Expand a 4-bit S-box into a byte-level LUT (two parallel S-boxes), so a
/// 64-bit substitution layer is eight table reads.
consteval std::array<std::uint8_t, 256> expand_sbox(
    const std::array<std::uint8_t, 16>& s) {
  std::array<std::uint8_t, 256> t{};
  for (unsigned i = 0; i < 256; ++i) {
    t[i] = static_cast<std::uint8_t>((s[i >> 4] << 4) | s[i & 0xF]);
  }
  return t;
}

inline constexpr auto kPresentByteLut = expand_sbox(kPresentSbox);
inline constexpr auto kSpongentByteLut = expand_sbox(kSpongentSbox);

/// Expand a byte LUT into a 16-bit double-byte LUT (four parallel S-boxes),
/// halving the table reads of a 64-bit substitution layer: eight byte loads
/// become four 16-bit loads. The 128 KiB table trades L1 residency for load
/// count — a loss on a single latency-bound mix, a win when several
/// independent mixes keep the load ports busy (mix_batch below); the
/// `mix_batch` scenario measures both regimes.
consteval std::array<std::uint16_t, 65536> expand_sbox16(
    const std::array<std::uint8_t, 256>& b) {
  std::array<std::uint16_t, 65536> t{};
  for (unsigned i = 0; i < 65536; ++i) {
    t[i] = static_cast<std::uint16_t>(b[i & 0xFF] |
                                      (static_cast<unsigned>(b[i >> 8]) << 8));
  }
  return t;
}

inline constexpr auto kPresentLut16 = expand_sbox16(kPresentByteLut);
inline constexpr auto kSpongentLut16 = expand_sbox16(kSpongentByteLut);

template <const std::array<std::uint8_t, 256>& Lut>
constexpr std::uint64_t sbox_layer(std::uint64_t x) noexcept {
  std::uint64_t r = 0;
  for (unsigned i = 0; i < 8; ++i) {
    r |= static_cast<std::uint64_t>(Lut[(x >> (8 * i)) & 0xFF]) << (8 * i);
  }
  return r;
}

/// 64-bit substitution layer through a 16-bit LUT: four loads instead of
/// eight. Bit-identical to sbox_layer over the matching byte LUT (the wide
/// table is that byte LUT applied to both halves of each 16-bit window).
template <const std::array<std::uint16_t, 65536>& Lut>
constexpr std::uint64_t sbox_layer16(std::uint64_t x) noexcept {
  return static_cast<std::uint64_t>(Lut[x & 0xFFFF]) |
         (static_cast<std::uint64_t>(Lut[(x >> 16) & 0xFFFF]) << 16) |
         (static_cast<std::uint64_t>(Lut[(x >> 32) & 0xFFFF]) << 32) |
         (static_cast<std::uint64_t>(Lut[x >> 48]) << 48);
}

/// Delta swap: exchanges the bit groups selected by `m` with the groups `s`
/// positions up — pure wiring in hardware, three gates' worth in software.
constexpr std::uint64_t delta_swap(std::uint64_t x, std::uint64_t m, unsigned s) noexcept {
  const std::uint64_t t = ((x >> s) ^ x) & m;
  return x ^ t ^ (t << s);
}

/// Fixed permutation layers (P-boxes) — bit scrambles chosen by the
/// generator; two distinct wirings give inter-nibble diffusion.
constexpr std::uint64_t pbox_a(std::uint64_t x) noexcept {
  x = delta_swap(x, 0x00000000FFFF0000ULL, 32);
  x = delta_swap(x, 0x0000FF000000FF00ULL, 8);
  x = delta_swap(x, 0x00F000F000F000F0ULL, 4);
  return util::rotl64(x, 29);
}
constexpr std::uint64_t pbox_b(std::uint64_t x) noexcept {
  x = delta_swap(x, 0x00000000F0F0F0F0ULL, 28);
  x = delta_swap(x, 0x0000CCCC0000CCCCULL, 14);
  x = delta_swap(x, 0x0A0A0A0A0A0A0A0AULL, 3);
  return util::rotl64(x, 17);
}

/// Sigma diffusion layer: each output bit XORs three state bits at fixed
/// rotational offsets — pure wiring plus one 3-input XOR gate per bit in
/// hardware (2 gate levels), and the cross-nibble diffusion the 4-bit
/// S-boxes cannot provide on their own. Offsets are coprime to 64 so the
/// dependency graph reaches every bit within two applications.
constexpr std::uint64_t sigma(std::uint64_t x, unsigned a, unsigned b) noexcept {
  return x ^ util::rotl64(x, a) ^ util::rotl64(x, b);
}

/// Core keyed compression: up to 128 input bits (ψ-spread ⊕ tweak as the
/// round keys, `lo`/`hi` as data) → 64 mixed bits. Three S/P/σ rounds — the
/// depth Figure 2's winning R1 circuit has.
constexpr std::uint64_t mix(std::uint64_t lo, std::uint64_t hi, std::uint32_t psi,
                            std::uint64_t tweak) noexcept {
  const std::uint64_t k =
      (static_cast<std::uint64_t>(psi) << 32 | psi) ^ tweak;
  std::uint64_t x = lo ^ util::rotl64(hi, 21) ^ k;
  x = sbox_layer<kPresentByteLut>(x);
  x = sigma(pbox_a(x), 19, 43);
  x ^= util::rotl64(hi, 47) ^ util::rotl64(k, 13);
  x = sbox_layer<kSpongentByteLut>(x);
  x = sigma(pbox_b(x), 11, 50);
  x ^= util::rotl64(k, 37);
  x = sbox_layer<kPresentByteLut>(x);
  x = sigma(x, 29, 39);
  // Final XOR compression (C-S box row): fold the halves together.
  return x ^ (x >> 31);
}

/// Width-N batched mix: N independent (lo, hi) inputs under one (ψ, tweak)
/// key — the shape every compacted remap-cache miss list has, since one
/// batch services one R function. The per-stage loops over the lane array
/// break the single mix's serial dependence: each stage issues N
/// independent chains, so the out-of-order core overlaps their LUT loads
/// and the cost per mix moves from the latency of the 3-round chain to the
/// throughput of the load ports. `UseLut16` selects the double-byte
/// substitution tables (half the loads per layer, larger footprint); both
/// renderings are bit-identical to scalar mix() lane by lane
/// (tests/core/mix_batch_test.cc).
template <unsigned N, bool UseLut16 = true>
inline void mix_batch(const std::uint64_t* lo, const std::uint64_t* hi,
                      std::uint32_t psi, std::uint64_t tweak,
                      std::uint64_t* out) noexcept {
  static_assert(N >= 1 && N <= 16, "lane count outside the profitable range");
  const auto sub_present = [](std::uint64_t v) {
    if constexpr (UseLut16) {
      return sbox_layer16<kPresentLut16>(v);
    } else {
      return sbox_layer<kPresentByteLut>(v);
    }
  };
  const auto sub_spongent = [](std::uint64_t v) {
    if constexpr (UseLut16) {
      return sbox_layer16<kSpongentLut16>(v);
    } else {
      return sbox_layer<kSpongentByteLut>(v);
    }
  };
  const std::uint64_t k =
      (static_cast<std::uint64_t>(psi) << 32 | psi) ^ tweak;
  const std::uint64_t k13 = util::rotl64(k, 13);
  const std::uint64_t k37 = util::rotl64(k, 37);
  std::uint64_t x[N];
  for (unsigned i = 0; i < N; ++i) x[i] = lo[i] ^ util::rotl64(hi[i], 21) ^ k;
  for (unsigned i = 0; i < N; ++i) x[i] = sub_present(x[i]);
  for (unsigned i = 0; i < N; ++i) x[i] = sigma(pbox_a(x[i]), 19, 43);
  for (unsigned i = 0; i < N; ++i) x[i] ^= util::rotl64(hi[i], 47) ^ k13;
  for (unsigned i = 0; i < N; ++i) x[i] = sub_spongent(x[i]);
  for (unsigned i = 0; i < N; ++i) x[i] = sigma(pbox_b(x[i]), 11, 50);
  for (unsigned i = 0; i < N; ++i) x[i] ^= k37;
  for (unsigned i = 0; i < N; ++i) x[i] = sub_present(x[i]);
  for (unsigned i = 0; i < N; ++i) x[i] = sigma(x[i], 29, 39);
  for (unsigned i = 0; i < N; ++i) out[i] = x[i] ^ (x[i] >> 31);
}

#if STBPU_MIX_AVX2

/// True once at startup when the host executes AVX2 (the binary itself is
/// compiled for baseline x86-64; only these attributed functions use it).
[[nodiscard]] inline bool mix_avx2_available() noexcept {
  static const bool ok = __builtin_cpu_supports("avx2");
  return ok;
}

namespace avx2 {

/// One substitution layer over four 64-bit lanes: the 4-bit S-box lives in
/// a register (16 bytes, broadcast per 128-bit lane) and vpshufb applies it
/// to all 16 nibbles of every lane simultaneously — zero table loads.
__attribute__((target("avx2"))) inline __m256i sbox_layer(__m256i x,
                                                          __m256i tbl) noexcept {
  const __m256i nib = _mm256_set1_epi8(0x0F);
  const __m256i lo = _mm256_and_si256(x, nib);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi64(x, 4), nib);
  // S[hi] bytes are <= 0x0F, so the 64-bit left shift cannot carry bits
  // across byte boundaries — no extra mask needed.
  return _mm256_or_si256(_mm256_shuffle_epi8(tbl, lo),
                         _mm256_slli_epi64(_mm256_shuffle_epi8(tbl, hi), 4));
}

__attribute__((target("avx2"))) inline __m256i rotl64(__m256i x,
                                                      unsigned s) noexcept {
  return _mm256_or_si256(_mm256_slli_epi64(x, static_cast<int>(s)),
                         _mm256_srli_epi64(x, static_cast<int>(64 - s)));
}

__attribute__((target("avx2"))) inline __m256i delta_swap(__m256i x, std::uint64_t m,
                                                          unsigned s) noexcept {
  const __m256i mask = _mm256_set1_epi64x(static_cast<long long>(m));
  const __m256i t = _mm256_and_si256(
      _mm256_xor_si256(_mm256_srli_epi64(x, static_cast<int>(s)), x), mask);
  return _mm256_xor_si256(_mm256_xor_si256(x, t),
                          _mm256_slli_epi64(t, static_cast<int>(s)));
}

__attribute__((target("avx2"))) inline __m256i pbox_a(__m256i x) noexcept {
  x = delta_swap(x, 0x00000000FFFF0000ULL, 32);
  x = delta_swap(x, 0x0000FF000000FF00ULL, 8);
  x = delta_swap(x, 0x00F000F000F000F0ULL, 4);
  return rotl64(x, 29);
}

__attribute__((target("avx2"))) inline __m256i pbox_b(__m256i x) noexcept {
  x = delta_swap(x, 0x00000000F0F0F0F0ULL, 28);
  x = delta_swap(x, 0x0000CCCC0000CCCCULL, 14);
  x = delta_swap(x, 0x0A0A0A0A0A0A0A0AULL, 3);
  return rotl64(x, 17);
}

__attribute__((target("avx2"))) inline __m256i sigma(__m256i x, unsigned a,
                                                     unsigned b) noexcept {
  return _mm256_xor_si256(_mm256_xor_si256(x, rotl64(x, a)), rotl64(x, b));
}

}  // namespace avx2

/// AVX2 mix_batch: N/4 vectors of four 64-bit lanes walked stage by stage
/// (all vectors per stage, for cross-vector ILP), mirroring scalar mix()
/// statement for statement — bit-identical by construction and asserted by
/// tests/core/mix_batch_test.cc through the dispatch entry point.
template <unsigned N>
__attribute__((target("avx2"))) inline void mix_batch_avx2(
    const std::uint64_t* lo, const std::uint64_t* hi, std::uint32_t psi,
    std::uint64_t tweak, std::uint64_t* out) noexcept {
  static_assert(N % 4 == 0 && N >= 4 && N <= 16);
  constexpr unsigned V = N / 4;
  const std::uint64_t k64 =
      (static_cast<std::uint64_t>(psi) << 32 | psi) ^ tweak;
  const __m256i k = _mm256_set1_epi64x(static_cast<long long>(k64));
  const __m256i k13 = avx2::rotl64(k, 13);
  const __m256i k37 = avx2::rotl64(k, 37);
  const __m256i present = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(detail::kPresentSbox.data())));
  const __m256i spongent = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(detail::kSpongentSbox.data())));

  __m256i x[V], h[V];
  for (unsigned v = 0; v < V; ++v) {
    h[v] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hi + 4 * v));
    x[v] = _mm256_xor_si256(
        _mm256_xor_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lo + 4 * v)),
            avx2::rotl64(h[v], 21)),
        k);
  }
  for (unsigned v = 0; v < V; ++v) x[v] = avx2::sbox_layer(x[v], present);
  for (unsigned v = 0; v < V; ++v) x[v] = avx2::sigma(avx2::pbox_a(x[v]), 19, 43);
  for (unsigned v = 0; v < V; ++v) {
    x[v] = _mm256_xor_si256(x[v], _mm256_xor_si256(avx2::rotl64(h[v], 47), k13));
  }
  for (unsigned v = 0; v < V; ++v) x[v] = avx2::sbox_layer(x[v], spongent);
  for (unsigned v = 0; v < V; ++v) x[v] = avx2::sigma(avx2::pbox_b(x[v]), 11, 50);
  for (unsigned v = 0; v < V; ++v) x[v] = _mm256_xor_si256(x[v], k37);
  for (unsigned v = 0; v < V; ++v) x[v] = avx2::sbox_layer(x[v], present);
  for (unsigned v = 0; v < V; ++v) x[v] = avx2::sigma(x[v], 29, 39);
  for (unsigned v = 0; v < V; ++v) {
    x[v] = _mm256_xor_si256(x[v], _mm256_srli_epi64(x[v], 31));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 4 * v), x[v]);
  }
}

#else  // !STBPU_MIX_AVX2

[[nodiscard]] inline bool mix_avx2_available() noexcept { return false; }

#endif  // STBPU_MIX_AVX2

/// Production batched-mix entry point: the AVX2 nibble-shuffle kernel when
/// the host executes it (and the lane count is vectorizable), else the
/// portable byte-LUT lane kernel. Bit-identical either way; the remap
/// cache's compacted miss lists go through here.
template <unsigned N>
inline void mix_batch_dispatch(const std::uint64_t* lo, const std::uint64_t* hi,
                               std::uint32_t psi, std::uint64_t tweak,
                               std::uint64_t* out) noexcept {
#if STBPU_MIX_AVX2
  if constexpr (N % 4 == 0) {
    if (mix_avx2_available()) {
      mix_batch_avx2<N>(lo, hi, psi, tweak, out);
      return;
    }
  }
#endif
  mix_batch<N, /*UseLut16=*/false>(lo, hi, psi, tweak, out);
}

}  // namespace detail

/// Stateless keyed remapping per Table II. Per-function tweak constants make
/// R1..R4/Rt/Rp mutually independent even under one ψ.
class Remapper {
 public:
  // Table II output geometry (baseline Skylake-like structures).
  static constexpr unsigned kBtbSetBits = 9;
  static constexpr unsigned kBtbTagBits = 8;
  static constexpr unsigned kBtbOffsetBits = 5;
  static constexpr unsigned kPhtIndexBits = 14;
  static constexpr unsigned kGhrBitsUsed = 16;  ///< STBPU consumes 16 GHR bits

  // Per-function round tweaks (the constants that make R1..R4/Rt/Rp
  // mutually independent under one ψ). Named so the batched probe/fill
  // path (core/remap_cache.h) can feed compacted miss lists through
  // detail::mix_batch with exactly the tweak the scalar function uses.
  static constexpr std::uint64_t kTweakR1 = 0xB7E151628AED2A6AULL;
  static constexpr std::uint64_t kTweakR2 = 0x9E3779B97F4A7C15ULL;
  static constexpr std::uint64_t kTweakR3 = 0x3C6EF372FE94F82BULL;
  static constexpr std::uint64_t kTweakR4 = 0xA54FF53A5F1D36F1ULL;
  static constexpr std::uint64_t kTweakRtIndex = 0x510E527FADE682D1ULL;
  static constexpr std::uint64_t kTweakRtTag = 0x9B05688C2B3E6C1FULL;
  static constexpr std::uint64_t kTweakRp = 0x1F83D9ABFB41BD6BULL;

  // Output extraction from a finished mix — shared by the scalar functions
  // and the batch fill path so the bit geometry has one source of truth.
  [[nodiscard]] static constexpr bpu::BtbIndex r1_from_mix(std::uint64_t m) noexcept {
    // Tag stays in the full 64-bit BtbIndex field (already masked to
    // kBtbTagBits by util::bits) — same width handling as r1_scaled, no
    // narrow-then-rewiden cast.
    return bpu::BtbIndex{
        .set = static_cast<std::uint32_t>(util::bits(m, 0, kBtbSetBits)),
        .tag = util::bits(m, kBtbSetBits, kBtbTagBits),
        .offset = static_cast<std::uint32_t>(
            util::bits(m, kBtbSetBits + kBtbTagBits, kBtbOffsetBits)),
    };
  }
  [[nodiscard]] static constexpr std::uint32_t pht_from_mix(std::uint64_t m) noexcept {
    return static_cast<std::uint32_t>(util::bits(m, 0, kPhtIndexBits));
  }
  [[nodiscard]] static constexpr std::uint32_t rp_from_mix(std::uint64_t m,
                                                           unsigned row_bits) noexcept {
    return static_cast<std::uint32_t>(util::bits(m, 0, row_bits));
  }
  [[nodiscard]] static constexpr std::uint32_t rt_index_from_mix(
      std::uint64_t m, unsigned index_bits) noexcept {
    return static_cast<std::uint32_t>(util::bits(m, 0, index_bits));
  }
  [[nodiscard]] static constexpr std::uint32_t rt_tag_from_mix(std::uint64_t m,
                                                               unsigned tag_bits) noexcept {
    // Tag drawn from a disjoint bit window so index/tag are not correlated.
    return static_cast<std::uint32_t>(util::bits(m, 14, tag_bits));
  }

  /// R1(80 ↦ 22): ψ + 48-bit address → BTB set/tag/offset.
  [[nodiscard]] static bpu::BtbIndex r1(std::uint32_t psi, std::uint64_t ip) noexcept {
    return r1_from_mix(detail::mix(ip & bpu::kVirtualAddressMask, 0, psi, kTweakR1));
  }

  /// R2(90 ↦ 8): ψ + 58-bit BHB → mode-2 tag component.
  [[nodiscard]] static std::uint32_t r2(std::uint32_t psi, std::uint64_t bhb) noexcept {
    const std::uint64_t m = detail::mix(bhb, bhb >> 32, psi, kTweakR2);
    return static_cast<std::uint32_t>(util::bits(m, 0, kBtbTagBits));
  }

  /// R3(80 ↦ 14): ψ + 48-bit address → PHT 1-level index.
  [[nodiscard]] static std::uint32_t r3(std::uint32_t psi, std::uint64_t ip) noexcept {
    return pht_from_mix(detail::mix(ip & bpu::kVirtualAddressMask, 0, psi, kTweakR3));
  }

  /// R4(96 ↦ 14): ψ + 16-bit GHR + 48-bit address → PHT 2-level index.
  [[nodiscard]] static std::uint32_t r4(std::uint32_t psi, std::uint64_t ip,
                                        std::uint64_t ghr) noexcept {
    return pht_from_mix(detail::mix(ip & bpu::kVirtualAddressMask,
                                    util::bits(ghr, 0, kGhrBitsUsed), psi, kTweakR4));
  }

  /// Rt(80↑ ↦ 25): ψ + 48-bit address + folded geometric history →
  /// per-table TAGE index/tag (10/8 bits for the 8KB config, 13/12 for 64KB).
  [[nodiscard]] static std::uint32_t rt_index(std::uint32_t psi, std::uint64_t ip,
                                              std::uint64_t folded_hist, unsigned table,
                                              unsigned index_bits) noexcept {
    const std::uint64_t m =
        detail::mix(ip & bpu::kVirtualAddressMask,
                    folded_hist ^ (std::uint64_t{table} << 58), psi, kTweakRtIndex);
    return rt_index_from_mix(m, index_bits);
  }
  [[nodiscard]] static std::uint32_t rt_tag(std::uint32_t psi, std::uint64_t ip,
                                            std::uint64_t folded_hist, unsigned table,
                                            unsigned tag_bits) noexcept {
    const std::uint64_t m =
        detail::mix(ip & bpu::kVirtualAddressMask,
                    folded_hist ^ (std::uint64_t{table} << 58), psi, kTweakRtTag);
    return rt_tag_from_mix(m, tag_bits);
  }

  /// Rp(80 ↦ 10): ψ + 48-bit address → perceptron row.
  [[nodiscard]] static std::uint32_t rp(std::uint32_t psi, std::uint64_t ip,
                                        unsigned row_bits) noexcept {
    return rp_from_mix(detail::mix(ip & bpu::kVirtualAddressMask, 0, psi, kTweakRp),
                       row_bits);
  }

  /// R1 with parameterized output geometry — used by the scaled-down
  /// structures that validate the §VI equations empirically (attack cost
  /// scales with I·T·O, so experiments shrink the structure, measure, and
  /// compare against the closed forms at both scales).
  [[nodiscard]] static bpu::BtbIndex r1_scaled(std::uint32_t psi, std::uint64_t ip,
                                               unsigned set_bits, unsigned tag_bits,
                                               unsigned offset_bits) noexcept {
    const std::uint64_t m =
        detail::mix(ip & bpu::kVirtualAddressMask, 0, psi, kTweakR1);
    return bpu::BtbIndex{
        .set = static_cast<std::uint32_t>(util::bits(m, 0, set_bits)),
        .tag = util::bits(m, set_bits, tag_bits),
        .offset = static_cast<std::uint32_t>(
            util::bits(m, set_bits + tag_bits, offset_bits)),
    };
  }
};

}  // namespace stbpu::core
