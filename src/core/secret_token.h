// Secret tokens (paper §IV): each software entity requiring isolation gets
// a 64-bit ST split into ψ (keys the remapping functions R1..R4/Rt/Rp) and
// φ (XOR-encrypts targets stored in BTB/RSB). In hardware the ST lives in a
// per-hart privileged register saved/restored by the OS on context and mode
// switches; simulating that save/restore is equivalent to keeping one token
// per entity, which is what STManager does.
//
// Entities: every user process (pid) is its own entity; the kernel is a
// single separate entity even though it shares the user's address space
// (threat model "Kernel/VMM as victim"). The OS may deliberately place
// several pids in one share-group so they use the same ST and retain each
// other's useful history (paper §IV-A, the fork-server example).
#pragma once

#include <cstdint>
#include <vector>

#include "bpu/types.h"
#include "util/rng.h"

namespace stbpu::core {

struct SecretToken {
  std::uint32_t psi = 0;  ///< remap key
  std::uint32_t phi = 0;  ///< target-encryption key
  friend constexpr bool operator==(const SecretToken&, const SecretToken&) = default;
};

class STManager {
 public:
  static constexpr std::uint32_t kMaxPids = 1u << 16;

  explicit STManager(std::uint64_t seed = 0xC0FFEE) : rng_(seed) {
    kernel_ = fresh();
  }

  /// Current token for the entity executing in `ctx` (lazily created).
  [[nodiscard]] const SecretToken& token(const bpu::ExecContext& ctx) {
    if (ctx.kernel) return kernel_;
    return slot(group_of(ctx.pid)).ensure(rng_);
  }

  /// Re-randomize the current entity's ST (fetch from the on-chip PRNG).
  /// Other entities' tokens — and therefore their usable history — are
  /// untouched; this is the key difference from flushing (paper §IV-A).
  void rerandomize(const bpu::ExecContext& ctx) {
    ++rerandomizations_;
    ++mutations_;
    if (ctx.kernel) {
      kernel_ = fresh();
    } else {
      slot(group_of(ctx.pid)).set(fresh());
    }
  }

  /// OS policy: make `pid` share `leader`'s ST group (selective history
  /// sharing for processes running the same program).
  void share(std::uint16_t pid, std::uint16_t leader) {
    ++mutations_;
    groups_.resize(std::max<std::size_t>(groups_.size(),
                                         std::max(pid, leader) + std::size_t{1}),
                   kNoGroup);
    groups_[pid] = group_of(leader);
  }

  /// OS privileged write of an explicit token (tests / reproducibility).
  void set_token(const bpu::ExecContext& ctx, SecretToken t) {
    ++mutations_;
    if (ctx.kernel) {
      kernel_ = t;
    } else {
      slot(group_of(ctx.pid)).set(t);
    }
  }

  /// OS slot recycling: the entity behind `ctx` is gone, so invalidate its
  /// slot. The next token() for this pid lazily draws a *fresh* ST — a
  /// recycled pid can never silently serve the previous entity's token
  /// (which would hand its successor the victim's usable history, the exact
  /// leak STBPU exists to close). Kernel entity is never recycled (no-op).
  void retire(const bpu::ExecContext& ctx) {
    if (ctx.kernel) return;
    const std::uint16_t g = group_of(ctx.pid);
    if (g < slots_.size() && slots_[g].valid) {
      slots_[g].valid = false;
      ++mutations_;  // memo-caches must drop ψ-derived values for this slot
    }
  }

  /// True when `ctx`'s entity already holds a token. Unlike token() this
  /// never creates one — callers that must not perturb the lazy PRNG draw
  /// order (lookahead, the tenant service's save-on-recycle) probe with
  /// this first.
  [[nodiscard]] bool has_token(const bpu::ExecContext& ctx) const {
    if (ctx.kernel) return true;
    const std::uint16_t g = group_of(ctx.pid);
    return g < slots_.size() && slots_[g].valid;
  }

  /// Live (token-holding) user slots — the tenant layer's exhaustion
  /// accounting against kMaxPids.
  [[nodiscard]] std::size_t valid_slots() const noexcept {
    std::size_t n = 0;
    for (const Slot& s : slots_) n += s.valid ? 1 : 0;
    return n;
  }

  [[nodiscard]] std::uint64_t rerandomizations() const noexcept {
    return rerandomizations_;
  }

  /// Bumped on every externally visible token change (re-randomization,
  /// explicit write, share-group edit) — the remap memo-cache watches this
  /// to know when memoized ψ-derived values may have gone stale.
  [[nodiscard]] std::uint64_t mutations() const noexcept { return mutations_; }

 private:
  static constexpr std::uint16_t kNoGroup = 0xFFFF;

  struct Slot {
    SecretToken tok{};
    bool valid = false;
    const SecretToken& ensure(util::Xoshiro256& rng) {
      if (!valid) {
        const std::uint64_t r = rng();
        tok = {static_cast<std::uint32_t>(r), static_cast<std::uint32_t>(r >> 32)};
        valid = true;
      }
      return tok;
    }
    void set(SecretToken t) {
      tok = t;
      valid = true;
    }
  };

  [[nodiscard]] SecretToken fresh() {
    const std::uint64_t r = rng_();
    return {static_cast<std::uint32_t>(r), static_cast<std::uint32_t>(r >> 32)};
  }

  [[nodiscard]] std::uint16_t group_of(std::uint16_t pid) const {
    return (pid < groups_.size() && groups_[pid] != kNoGroup) ? groups_[pid] : pid;
  }

  Slot& slot(std::uint16_t group) {
    if (group >= slots_.size()) slots_.resize(std::size_t{group} + 1);
    return slots_[group];
  }

  util::Xoshiro256 rng_;
  SecretToken kernel_{};
  std::vector<Slot> slots_;
  std::vector<std::uint16_t> groups_;
  std::uint64_t rerandomizations_ = 0;
  std::uint64_t mutations_ = 0;
};

}  // namespace stbpu::core
