// STBPU mapping provider — glues the secret-token registers to the keyed
// remapping functions and the φ target codec, implementing the Figure 1
// components highlighted as STBPU (remapping ψ, encryption φ). Swapping
// this provider in place of BaselineMapping is the *entire* integration
// surface with the predictors, matching the paper's claim that STBPU does
// not interfere with the prediction mechanisms themselves.
//
// StbpuMappingLogic is the non-virtual rendering consumed by the templated
// engine (and wrapped by the memo-caching CachedStbpuMapping in
// core/remap_cache.h); StbpuMapping is the thin MappingProvider adapter
// kept at the API edge.
#pragma once

#include "bpu/mapping.h"
#include "core/remap.h"
#include "core/secret_token.h"
#include "util/bits.h"

namespace stbpu::core {

class StbpuMappingLogic {
 public:
  explicit StbpuMappingLogic(STManager* stm) : stm_(stm) {}

  [[nodiscard]] bpu::BtbIndex btb_mode1(std::uint64_t ip,
                                        const bpu::ExecContext& ctx) const {
    return Remapper::r1(stm_->token(ctx).psi, ip);
  }

  [[nodiscard]] std::uint32_t btb_mode2_tag(std::uint64_t bhb,
                                            const bpu::ExecContext& ctx) const {
    return Remapper::r2(stm_->token(ctx).psi, bhb);
  }

  [[nodiscard]] std::uint32_t pht_index_1level(std::uint64_t ip,
                                               const bpu::ExecContext& ctx) const {
    return Remapper::r3(stm_->token(ctx).psi, ip);
  }

  [[nodiscard]] std::uint32_t pht_index_2level(std::uint64_t ip, std::uint64_t ghr,
                                               const bpu::ExecContext& ctx) const {
    return Remapper::r4(stm_->token(ctx).psi, ip, ghr);
  }

  [[nodiscard]] std::uint64_t encode_target(std::uint64_t target,
                                            const bpu::ExecContext& ctx) const {
    // Store 32 bits XOR-encrypted with the entity's φ (paper §IV-B).
    return util::bits(target, 0, 32) ^ stm_->token(ctx).phi;
  }

  [[nodiscard]] std::uint64_t decode_target(std::uint64_t branch_ip, std::uint64_t stored,
                                            const bpu::ExecContext& ctx) const {
    // Modified function 5: decrypt with the *current* entity's φ, then
    // re-extend with the upper IP bits. A payload written under another φ
    // decodes to a uniformly random 32-bit offset — malicious speculative
    // execution stalls at a garbage address.
    const std::uint64_t lo = (stored ^ stm_->token(ctx).phi) & 0xFFFF'FFFFULL;
    return (branch_ip & 0xFFFF'0000'0000ULL) | lo;
  }

  [[nodiscard]] std::uint32_t tage_index(std::uint64_t ip, std::uint64_t folded_hist,
                                         unsigned table, unsigned index_bits,
                                         const bpu::ExecContext& ctx) const {
    return Remapper::rt_index(stm_->token(ctx).psi, ip, folded_hist, table, index_bits);
  }

  [[nodiscard]] std::uint32_t tage_tag(std::uint64_t ip, std::uint64_t folded_hist,
                                       unsigned table, unsigned tag_bits,
                                       const bpu::ExecContext& ctx) const {
    return Remapper::rt_tag(stm_->token(ctx).psi, ip, folded_hist, table, tag_bits);
  }

  [[nodiscard]] std::uint32_t perceptron_row(std::uint64_t ip, unsigned row_bits,
                                             const bpu::ExecContext& ctx) const {
    return Remapper::rp(stm_->token(ctx).psi, ip, row_bits);
  }

  [[nodiscard]] STManager& tokens() const noexcept { return *stm_; }

 private:
  STManager* stm_;
};

/// Virtual adapter over StbpuMappingLogic (API edge).
class StbpuMapping final : public bpu::MappingAdapterT<StbpuMappingLogic> {
 public:
  explicit StbpuMapping(STManager* stm) : MappingAdapterT(StbpuMappingLogic(stm)) {}

  [[nodiscard]] STManager& tokens() const noexcept { return logic_.tokens(); }
};

}  // namespace stbpu::core
