// Structure-of-arrays branch batches for the replay hot loop.
//
// The simulators used to pull branches one at a time through a virtual
// BranchStream::next() — one indirect call plus an AoS BranchRecord copy
// per dynamic branch. Batched replay amortizes the stream dispatch over
// kDefaultBatch records and keeps the per-branch fields in parallel arrays
// so the replay loop's bookkeeping (context-switch detection, warm-up
// windowing, stat absorption) walks dense, homogeneous memory.
#pragma once

#include <cstdint>
#include <vector>

#include "bpu/types.h"

namespace stbpu::trace {

inline constexpr std::size_t kDefaultBatch = 4096;

/// SoA view of a run of dynamic branches. Field i of every array describes
/// the same branch; `record(i)` reassembles the AoS form for predictors.
struct BranchBatch {
  std::vector<std::uint64_t> ip;
  std::vector<std::uint64_t> target;
  std::vector<bpu::BranchType> type;
  std::vector<std::uint8_t> taken;
  std::vector<std::uint16_t> pid;
  std::vector<std::uint8_t> hart;
  std::vector<std::uint8_t> kernel;

  [[nodiscard]] std::size_t size() const noexcept { return ip.size(); }
  [[nodiscard]] bool empty() const noexcept { return ip.empty(); }

  void clear() noexcept {
    ip.clear();
    target.clear();
    type.clear();
    taken.clear();
    pid.clear();
    hart.clear();
    kernel.clear();
  }

  void reserve(std::size_t n) {
    ip.reserve(n);
    target.reserve(n);
    type.reserve(n);
    taken.reserve(n);
    pid.reserve(n);
    hart.reserve(n);
    kernel.reserve(n);
  }

  void push_back(const bpu::BranchRecord& r) {
    ip.push_back(r.ip);
    target.push_back(r.target);
    type.push_back(r.type);
    taken.push_back(r.taken ? 1 : 0);
    pid.push_back(r.ctx.pid);
    hart.push_back(r.ctx.hart);
    kernel.push_back(r.ctx.kernel ? 1 : 0);
  }

  [[nodiscard]] bpu::ExecContext context(std::size_t i) const noexcept {
    return bpu::ExecContext{.pid = pid[i], .hart = hart[i], .kernel = kernel[i] != 0};
  }

  [[nodiscard]] bpu::BranchRecord record(std::size_t i) const noexcept {
    return bpu::BranchRecord{.ip = ip[i],
                             .target = target[i],
                             .type = type[i],
                             .taken = taken[i] != 0,
                             .ctx = context(i)};
  }
};

}  // namespace stbpu::trace
