#include "trace/generator.h"

#include <algorithm>
#include <cmath>

#include "bpu/predictor.h"  // kBranchInstrLen

namespace stbpu::trace {

namespace {
// Address-space layout (48-bit): per-process user images, a function area
// per image, and one kernel image shared by every process.
constexpr std::uint64_t kUserBase = 0x0000'1000'0000ULL;
constexpr std::uint64_t kImageStride = 0x0000'0800'0000ULL;
constexpr std::uint64_t kFunctionAreaOff = 0x0000'0400'0000ULL;
constexpr std::uint64_t kKernelBase = 0x7FFF'0000'0000ULL;
constexpr std::uint64_t kSiteStride = 16;
}  // namespace

SyntheticWorkloadGenerator::SyntheticWorkloadGenerator(const WorkloadProfile& profile,
                                                       std::uint64_t seed_override)
    : profile_(profile),
      seed_(seed_override ? seed_override : profile.seed),
      rng_(seed_) {
  // Build static programs once; reset() only rebuilds dynamic state.
  util::Xoshiro256 build_rng(seed_ ^ 0xB01D'FACEULL);
  const unsigned num_images =
      profile_.processes_share_code ? 1 : std::max(1u, profile_.num_processes);
  programs_.reserve(num_images);
  for (unsigned i = 0; i < num_images; ++i) {
    // ASLR-style base jitter: without it every image would share its low
    // address bits and the baseline's truncated mappings would alias
    // *systematically* across processes and against the kernel.
    const std::uint64_t jitter = (build_rng() & 0x3F'FFFFULL) * kSiteStride;
    programs_.push_back(build_program(kUserBase + i * kImageStride + jitter, build_rng));
  }
  kernel_ = build_kernel_program(build_rng);
  init_dynamic_state();
}

SyntheticWorkloadGenerator::Program SyntheticWorkloadGenerator::build_program(
    std::uint64_t base, util::Xoshiro256& rng) const {
  Program prog;
  const unsigned n = profile_.static_branches;

  // Functions first so sites can target them.
  prog.functions.reserve(profile_.functions);
  const std::uint64_t fn_base = base + kFunctionAreaOff;
  for (unsigned f = 0; f < profile_.functions; ++f) {
    const std::uint64_t entry = fn_base + f * 256;
    prog.functions.push_back({.entry = entry, .ret_ip = entry + 128});
  }

  // Split the site budget by the type mix; remainder is conditional.
  const auto count = [n](double frac) {
    return std::max<unsigned>(1, static_cast<unsigned>(n * frac));
  };
  const unsigned n_calls = count(profile_.frac_call);
  const unsigned n_jumps = count(profile_.frac_direct_jump);
  const unsigned n_ind = count(profile_.frac_indirect);
  const unsigned n_cond =
      std::max<unsigned>(16, n - std::min(n, n_calls + n_jumps + n_ind));

  std::uint64_t ip = base;
  const auto next_ip = [&ip]() {
    const std::uint64_t v = ip;
    ip += kSiteStride;
    return v;
  };

  prog.conds.reserve(n_cond);
  for (unsigned i = 0; i < n_cond; ++i) {
    CondSite s;
    s.ip = next_ip();
    // Taken targets are short backward jumps (loop-shaped).
    s.target = s.ip - kSiteStride * rng.range(1, 64);
    const double u = rng.uniform();
    if (u < profile_.biased_frac) {
      s.behavior = CondBehavior::kBiased;
      s.taken_prob = rng.chance(0.6) ? 0.99f : 0.01f;
    } else if (u < profile_.biased_frac + profile_.loop_frac) {
      s.behavior = CondBehavior::kLoop;
      // Mostly short loops (learnable from history), occasionally long.
      s.trip = static_cast<std::uint16_t>(
          rng.chance(0.7) ? rng.range(3, 16)
                          : rng.range(8, profile_.max_trip_count));
    } else if (u < profile_.biased_frac + profile_.loop_frac + profile_.pattern_frac) {
      // Outcome is a boolean function of recent global outcomes — the
      // correlation history predictors exploit ("if (x)" ... "if (x) again").
      s.behavior = CondBehavior::kCorrelated;
      s.tap1 = static_cast<std::uint8_t>(rng.range(1, 10));
      s.tap2 = rng.chance(0.4) ? static_cast<std::uint8_t>(rng.range(1, 12)) : 0;
      s.invert = rng.chance(0.5);
    } else {
      s.behavior = CondBehavior::kRandom;
      s.taken_prob = static_cast<float>(profile_.hard_taken_prob);
    }
    prog.conds.push_back(std::move(s));
  }

  prog.jumps.reserve(n_jumps);
  for (unsigned i = 0; i < n_jumps; ++i) {
    JumpSite s;
    s.ip = next_ip();
    s.target = base + kSiteStride * rng.below(n);
    prog.jumps.push_back(s);
  }

  prog.calls.reserve(n_calls);
  for (unsigned i = 0; i < n_calls; ++i) {
    CallSite s;
    s.ip = next_ip();
    s.callee = static_cast<std::uint32_t>(rng.below(prog.functions.size()));
    prog.calls.push_back(s);
  }

  prog.indirects.reserve(n_ind);
  for (unsigned i = 0; i < n_ind; ++i) {
    IndirectSite s;
    s.ip = next_ip();
    s.is_call = rng.chance(0.3);
    const unsigned fanout =
        static_cast<unsigned>(rng.range(2, std::max(2u, profile_.indirect_targets)));
    s.targets.reserve(fanout);
    for (unsigned t = 0; t < fanout; ++t) {
      if (s.is_call) {
        s.targets.push_back(prog.functions[rng.below(prog.functions.size())].entry);
      } else {
        s.targets.push_back(base + kSiteStride * rng.below(n));
      }
    }
    prog.indirects.push_back(std::move(s));
  }
  return prog;
}

SyntheticWorkloadGenerator::Program SyntheticWorkloadGenerator::build_kernel_program(
    util::Xoshiro256& rng) const {
  // The kernel image is conditional/jump only (handlers): its role in the
  // evaluation is mode-switch pollution and kernel-entity history.
  Program prog;
  const unsigned n = std::max(64u, profile_.kernel_branches);
  const std::uint64_t base = kKernelBase + (rng() & 0x3F'FFFFULL) * kSiteStride;
  std::uint64_t ip = base;
  for (unsigned i = 0; i < n; ++i) {
    if (i % 5 == 4) {
      prog.jumps.push_back({.ip = ip, .target = base + kSiteStride * rng.below(n)});
    } else {
      CondSite s;
      s.ip = ip;
      s.target = ip - kSiteStride * rng.range(1, 32);
      const double u = rng.uniform();
      if (u < 0.6) {
        s.behavior = CondBehavior::kBiased;
        s.taken_prob = rng.chance(0.6) ? 0.99f : 0.01f;
      } else if (u < 0.9) {
        s.behavior = CondBehavior::kCorrelated;
        s.tap1 = static_cast<std::uint8_t>(rng.range(1, 8));
        s.tap2 = 0;
        s.invert = rng.chance(0.5);
      } else {
        s.behavior = CondBehavior::kRandom;
        s.taken_prob = 0.5f;
      }
      prog.conds.push_back(std::move(s));
    }
    ip += kSiteStride;
  }
  return prog;
}

void SyntheticWorkloadGenerator::init_dynamic_state() {
  processes_.clear();
  const unsigned nproc = std::max(1u, profile_.num_processes);
  processes_.resize(nproc);
  for (unsigned i = 0; i < nproc; ++i) {
    ProcessState& ps = processes_[i];
    ps.pid = static_cast<std::uint16_t>(i + 1);
    ps.program = profile_.processes_share_code
                     ? 0
                     : static_cast<std::uint32_t>(i % programs_.size());
    const Program& prog = programs_[ps.program];
    ps.loop_iter.assign(prog.conds.size(), 0);
    ps.ind_current.assign(prog.indirects.size(), 0);
    ps.stack.clear();
    ps.history = 0;
    ps.burst_site = -1;
  }
  kernel_history_ = 0;
  current_proc_ = 0;
  kernel_remaining_ = 0;
  switch_after_kernel_ = false;
  emitted_ = 0;
}

void SyntheticWorkloadGenerator::reset() {
  rng_ = util::Xoshiro256(seed_);
  init_dynamic_state();
}

std::size_t SyntheticWorkloadGenerator::pick_site(std::size_t n) {
  if (n <= 4) return rng_.below(n);
  // Two-tier working set: the hot head is revisited constantly (and skewed
  // inside), the cold tail only occasionally — matching the instruction
  // reuse distance profile of real code.
  const std::size_t hot = std::max<std::size_t>(8, n / profile_.hot_divisor);
  if (hot >= n || rng_.chance(profile_.hot_ratio)) {
    const double x = std::pow(rng_.uniform(), profile_.site_skew);
    auto idx = static_cast<std::size_t>(x * static_cast<double>(std::min(hot, n)));
    return idx >= n ? n - 1 : idx;
  }
  return hot + rng_.below(n - hot);
}

bool SyntheticWorkloadGenerator::cond_outcome(const CondSite& s, ProcessState& ps,
                                              std::size_t idx) {
  switch (s.behavior) {
    case CondBehavior::kBiased:
    case CondBehavior::kRandom:
      return rng_.chance(s.taken_prob);
    case CondBehavior::kLoop: {
      std::uint16_t& iter = ps.loop_iter[idx];
      if (iter < s.trip) {
        ++iter;
        return true;
      }
      iter = 0;
      return false;
    }
    case CondBehavior::kCorrelated: {
      bool v = (ps.history >> s.tap1) & 1;
      if (s.tap2 != 0) v ^= (ps.history >> s.tap2) & 1;
      return v != s.invert;
    }
  }
  return false;
}

bpu::BranchRecord SyntheticWorkloadGenerator::emit_conditional(ProcessState& ps,
                                                               std::size_t idx) {
  const Program& prog = programs_[ps.program];
  const CondSite& s = prog.conds[idx];
  bpu::BranchRecord rec;
  rec.ctx = {.pid = ps.pid, .hart = 0, .kernel = false};
  rec.ip = s.ip;
  rec.type = bpu::BranchType::kConditional;
  const bool taken = cond_outcome(s, ps, idx);
  rec.taken = taken;
  rec.target = taken ? s.target : s.ip + bpu::kBranchInstrLen;
  ps.history = (ps.history << 1) | static_cast<std::uint64_t>(taken);

  if (s.behavior == CondBehavior::kLoop) {
    // Keep the loop alive as a burst until its exit is emitted.
    ps.burst_site = taken ? static_cast<std::int64_t>(idx) : -1;
  }
  return rec;
}

bpu::BranchRecord SyntheticWorkloadGenerator::emit_kernel_branch() {
  const ProcessState& ps = processes_[current_proc_];
  bpu::BranchRecord rec;
  rec.ctx = {.pid = ps.pid, .hart = 0, .kernel = true};

  // 1-in-5 sites are jumps (see build_kernel_program).
  if (!kernel_.jumps.empty() && rng_.chance(0.2)) {
    const JumpSite& s = kernel_.jumps[pick_site(kernel_.jumps.size())];
    rec.ip = s.ip;
    rec.target = s.target;
    rec.type = bpu::BranchType::kDirectJump;
    rec.taken = true;
    return rec;
  }
  const std::size_t i = pick_site(kernel_.conds.size());
  const CondSite& s = kernel_.conds[i];
  rec.ip = s.ip;
  rec.type = bpu::BranchType::kConditional;
  bool taken;
  if (s.behavior == CondBehavior::kCorrelated) {
    bool v = (kernel_history_ >> s.tap1) & 1;
    if (s.tap2 != 0) v ^= (kernel_history_ >> s.tap2) & 1;
    taken = v != s.invert;
  } else {
    taken = rng_.chance(s.taken_prob);
  }
  kernel_history_ = (kernel_history_ << 1) | static_cast<std::uint64_t>(taken);
  rec.taken = taken;
  rec.target = taken ? s.target : s.ip + bpu::kBranchInstrLen;
  return rec;
}

bpu::BranchRecord SyntheticWorkloadGenerator::emit_user_branch(ProcessState& ps) {
  const Program& prog = programs_[ps.program];

  // Active loop burst: mostly re-execute the loop branch, sometimes a body
  // branch in between.
  if (ps.burst_site >= 0 && !rng_.chance(profile_.body_interleave)) {
    return emit_conditional(ps, static_cast<std::size_t>(ps.burst_site));
  }

  bpu::BranchRecord rec;
  rec.ctx = {.pid = ps.pid, .hart = 0, .kernel = false};

  const double u = rng_.uniform();
  double acc = profile_.frac_call;

  // Returns are emitted with a probability that grows with stack depth so
  // the steady-state depth hovers around call_depth_bias.
  const double depth = static_cast<double>(ps.stack.size());
  const double p_ret =
      ps.stack.empty() ? 0.0
                       : profile_.frac_call * (depth / profile_.call_depth_bias) * 2.0;

  if (u < acc && !prog.calls.empty()) {
    const CallSite& s = prog.calls[pick_site(prog.calls.size())];
    rec.ip = s.ip;
    rec.type = bpu::BranchType::kDirectCall;
    rec.taken = true;
    rec.target = prog.functions[s.callee].entry;
    if (ps.stack.size() < 256) {
      ps.stack.push_back({.ret_addr = s.ip + bpu::kBranchInstrLen, .fn = s.callee});
    }
    return rec;
  }
  acc += p_ret;
  if (u < acc && !ps.stack.empty()) {
    const ProcessState::Frame frame = ps.stack.back();
    ps.stack.pop_back();
    rec.ip = prog.functions[frame.fn].ret_ip;
    rec.type = bpu::BranchType::kReturn;
    rec.taken = true;
    rec.target = frame.ret_addr;
    return rec;
  }
  acc += profile_.frac_direct_jump;
  if (u < acc && !prog.jumps.empty()) {
    const JumpSite& s = prog.jumps[pick_site(prog.jumps.size())];
    rec.ip = s.ip;
    rec.type = bpu::BranchType::kDirectJump;
    rec.taken = true;
    rec.target = s.target;
    return rec;
  }
  acc += profile_.frac_indirect;
  if (u < acc && !prog.indirects.empty()) {
    const std::size_t i = pick_site(prog.indirects.size());
    const IndirectSite& s = prog.indirects[i];
    std::uint8_t& cur = ps.ind_current[i];
    if (rng_.chance(profile_.indirect_switch_prob)) {
      cur = static_cast<std::uint8_t>(rng_.below(s.targets.size()));
    }
    rec.ip = s.ip;
    rec.taken = true;
    rec.target = s.targets[cur];
    if (s.is_call) {
      rec.type = bpu::BranchType::kIndirectCall;
      // Indirect calls land on function entries; recover the callee index
      // so the matching return comes from the right ret site.
      const std::uint64_t fn_base = s.targets[cur];
      const std::uint32_t fn = static_cast<std::uint32_t>(
          (fn_base - prog.functions.front().entry) / 256);
      if (ps.stack.size() < 256 && fn < prog.functions.size()) {
        ps.stack.push_back({.ret_addr = s.ip + bpu::kBranchInstrLen, .fn = fn});
      }
    } else {
      rec.type = bpu::BranchType::kIndirectJump;
    }
    return rec;
  }

  return emit_conditional(ps, pick_site(prog.conds.size()));
}

bool SyntheticWorkloadGenerator::next(bpu::BranchRecord& out) {
  ++emitted_;

  if (kernel_remaining_ > 0) {
    --kernel_remaining_;
    out = emit_kernel_branch();
    if (kernel_remaining_ == 0 && switch_after_kernel_) {
      // Scheduler decision. With a weighted primary (compute-bound SPEC +
      // background daemons) the foreground process keeps or regains the
      // core with probability `primary_process_weight`.
      switch_after_kernel_ = false;
      if (rng_.chance(profile_.primary_process_weight)) {
        current_proc_ = 0;
      } else {
        current_proc_ = (current_proc_ + 1 + rng_.below(processes_.size())) %
                        processes_.size();
      }
    }
    return true;
  }

  // System events.
  if (processes_.size() > 1 && rng_.chance(profile_.context_switch_rate)) {
    kernel_remaining_ = static_cast<std::uint32_t>(rng_.range(16, 48));  // scheduler
    switch_after_kernel_ = true;
    out = emit_kernel_branch();
    --kernel_remaining_;
    return true;
  }
  if (rng_.chance(profile_.syscall_rate)) {
    kernel_remaining_ = static_cast<std::uint32_t>(rng_.range(8, 64));
    out = emit_kernel_branch();
    --kernel_remaining_;
    return true;
  }
  if (rng_.chance(profile_.interrupt_rate)) {
    kernel_remaining_ = static_cast<std::uint32_t>(rng_.range(24, 128));
    out = emit_kernel_branch();
    --kernel_remaining_;
    return true;
  }

  out = emit_user_branch(processes_[current_proc_]);
  return true;
}

std::size_t SyntheticWorkloadGenerator::next_batch(BranchBatch& out, std::size_t limit) {
  // The class is final, so the next() calls below devirtualize: the whole
  // batch is emitted behind ONE virtual dispatch, each record pushed
  // straight onto the SoA arrays.
  out.clear();
  bpu::BranchRecord r;
  while (out.size() < limit && next(r)) out.push_back(r);
  return out.size();
}

}  // namespace stbpu::trace
