// Binary branch-trace serialization — lets expensive synthetic traces (or
// user-supplied converted Intel PT traces) be cached on disk and replayed
// byte-identically across models.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bpu/types.h"
#include "trace/stream.h"

namespace stbpu::trace {

inline constexpr std::uint32_t kTraceMagic = 0x53'54'42'50;  // "STBP"
inline constexpr std::uint32_t kTraceVersion = 1;

/// Write records to `path`. Returns false on I/O failure.
bool write_trace(const std::string& path, const std::vector<bpu::BranchRecord>& records);

/// Read records from `path`. Throws std::runtime_error on malformed input.
std::vector<bpu::BranchRecord> read_trace(const std::string& path);

/// How FileStream reads the trace bytes.
enum class FileStreamMode : std::uint8_t {
  kAuto,      ///< mmap when the platform supports it, else buffered fread
  kMmap,      ///< require mmap; throws where unavailable
  kBuffered,  ///< block-buffered fread (the portable fallback)
};

/// File-backed branch stream with block-buffered reads: records are pulled
/// from disk kDefaultBatch at a time and unpacked into a resident buffer,
/// so next() never touches the file per branch and borrow_run() hands
/// sim::replay contiguous already-materialized runs (the SoA fast path) —
/// without materializing the whole trace like read_trace + VectorStream.
///
/// Very large traces should be mapped, not read: in mmap mode the whole
/// file is mapped read-only once (the kernel pages it in on demand and can
/// evict cold pages under pressure, so a 100 GB trace needs no resident
/// copy) and refills unpack straight from the mapping with zero syscalls.
/// Record unpacking — and therefore every statistic — is identical across
/// modes (tests/trace/file_stream_test.cc asserts mmap ≡ fread ≡ memory).
/// Throws std::runtime_error on open/header/size failure or truncated
/// reads.
class FileStream final : public BranchStream {
 public:
  explicit FileStream(std::string path, FileStreamMode mode = FileStreamMode::kAuto);
  ~FileStream() override;

  FileStream(const FileStream&) = delete;
  FileStream& operator=(const FileStream&) = delete;

  bool next(bpu::BranchRecord& out) override;
  void reset() override;
  std::size_t next_batch(BranchBatch& out, std::size_t limit = kDefaultBatch) override;
  const bpu::BranchRecord* borrow_run(std::size_t limit, std::size_t& n) override;

  /// Total records in the trace file.
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  /// True when refills unpack from an mmap'ed region instead of fread.
  [[nodiscard]] bool mmap_active() const noexcept { return map_base_ != nullptr; }

 private:
  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };

  /// (Re)open the file, validate the header, and establish the configured
  /// read mode (mapping the file in mmap mode).
  void open_and_map();
  void unmap();

  /// Refill the buffer (up to kDefaultBatch records) from the mapping or
  /// from disk. Returns the number of buffered records available.
  std::size_t refill();

  std::string path_;
  FileStreamMode mode_;
  std::unique_ptr<std::FILE, FileCloser> file_;
  std::uint64_t count_ = 0;      ///< records in the file
  std::uint64_t consumed_ = 0;   ///< records handed to the caller
  std::vector<bpu::BranchRecord> buffer_;
  std::size_t buffer_pos_ = 0;
  void* map_base_ = nullptr;     ///< whole-file mapping (mmap mode)
  std::size_t map_len_ = 0;
};

}  // namespace stbpu::trace
