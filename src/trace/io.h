// Binary branch-trace serialization — lets expensive synthetic traces (or
// user-supplied converted Intel PT traces) be cached on disk and replayed
// byte-identically across models.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bpu/types.h"

namespace stbpu::trace {

inline constexpr std::uint32_t kTraceMagic = 0x53'54'42'50;  // "STBP"
inline constexpr std::uint32_t kTraceVersion = 1;

/// Write records to `path`. Returns false on I/O failure.
bool write_trace(const std::string& path, const std::vector<bpu::BranchRecord>& records);

/// Read records from `path`. Throws std::runtime_error on malformed input.
std::vector<bpu::BranchRecord> read_trace(const std::string& path);

}  // namespace stbpu::trace
