// Binary branch-trace serialization — lets expensive synthetic traces (or
// user-supplied converted Intel PT traces) be cached on disk and replayed
// byte-identically across models.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bpu/types.h"
#include "trace/stream.h"

namespace stbpu::trace {

inline constexpr std::uint32_t kTraceMagic = 0x53'54'42'50;  // "STBP"
inline constexpr std::uint32_t kTraceVersion = 1;

/// Write records to `path`. Returns false on I/O failure.
bool write_trace(const std::string& path, const std::vector<bpu::BranchRecord>& records);

/// Read records from `path`. Throws std::runtime_error on malformed input.
std::vector<bpu::BranchRecord> read_trace(const std::string& path);

/// File-backed branch stream with block-buffered reads: records are pulled
/// from disk kDefaultBatch at a time and unpacked into a resident buffer,
/// so next() never touches the file per branch and borrow_run() hands
/// sim::replay contiguous already-materialized runs (the SoA fast path) —
/// without materializing the whole trace like read_trace + VectorStream.
/// Throws std::runtime_error on open/header failure or truncated reads.
class FileStream final : public BranchStream {
 public:
  explicit FileStream(std::string path);

  bool next(bpu::BranchRecord& out) override;
  void reset() override;
  std::size_t next_batch(BranchBatch& out, std::size_t limit = kDefaultBatch) override;
  const bpu::BranchRecord* borrow_run(std::size_t limit, std::size_t& n) override;

  /// Total records in the trace file.
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

 private:
  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };

  /// Refill the buffer from disk (up to kDefaultBatch records). Returns the
  /// number of buffered records available.
  std::size_t refill();

  std::string path_;
  std::unique_ptr<std::FILE, FileCloser> file_;
  std::uint64_t count_ = 0;      ///< records in the file
  std::uint64_t consumed_ = 0;   ///< records handed to the caller
  std::vector<bpu::BranchRecord> buffer_;
  std::size_t buffer_pos_ = 0;
};

}  // namespace stbpu::trace
