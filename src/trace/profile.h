// Workload profiles — the statistical substitute for the paper's Intel PT
// captures (DESIGN.md substitution #1). Each named profile parameterizes
// the synthetic generator so the produced branch stream lands in the same
// branch-behaviour regime the corresponding real workload exhibits:
// footprint, type mix, bias structure, indirect fan-out, call depth, and
// the system-interaction knobs (syscall rate, context-switch interval,
// process count, shared code) that drive the flush-vs-remap comparison of
// Figure 3.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace stbpu::trace {

struct WorkloadProfile {
  std::string name;

  // --- static code shape -------------------------------------------------
  unsigned static_branches = 4096;  ///< distinct user branch sites
  unsigned functions = 64;          ///< call graph size
  unsigned kernel_branches = 512;   ///< kernel handler footprint

  // --- branch type mix (fractions of emitted branches) --------------------
  double frac_call = 0.10;          ///< calls (returns emitted to match)
  double frac_direct_jump = 0.05;
  double frac_indirect = 0.02;      ///< indirect jumps/calls

  // --- conditional behaviour mix (of conditional sites) -------------------
  double biased_frac = 0.45;   ///< ~99% one-direction branches
  double loop_frac = 0.25;     ///< fixed trip-count loop exits (emitted as bursts)
  double pattern_frac = 0.15;  ///< outcomes correlated with recent global history
  // remainder: data-dependent branches with taken-prob `hard_taken_prob`
  double hard_taken_prob = 0.55;
  unsigned max_trip_count = 64;
  /// While inside a loop burst, probability per step of interleaving some
  /// other branch (models loop bodies containing further control flow).
  double body_interleave = 0.45;

  // --- indirect behaviour --------------------------------------------------
  unsigned indirect_targets = 4;   ///< fan-out per indirect site
  double indirect_switch_prob = 0.15;  ///< target-change probability

  // --- locality ------------------------------------------------------------
  /// Two-tier instruction working set: `hot_ratio` of picks land in the hot
  /// head (|sites| / hot_divisor, skewed by site_skew inside), the rest in
  /// the cold tail. Controls BTB pressure — gcc/chrome keep a low ratio.
  double hot_ratio = 0.975;
  unsigned hot_divisor = 16;
  double site_skew = 1.3;  ///< >1: skew inside the hot head

  // --- system interaction ----------------------------------------------
  double syscall_rate = 0.0005;        ///< kernel excursions per user branch
  double context_switch_rate = 2e-5;   ///< process switches per branch
  double interrupt_rate = 5e-6;        ///< interrupt handler excursions
  unsigned num_processes = 1;
  /// Probability that the scheduler returns to process 0 after a switch
  /// (compute-bound workload + background daemons); 0 = uniform rotation.
  double primary_process_weight = 0.0;
  bool processes_share_code = false;   ///< e.g. apache prefork workers
  double call_depth_bias = 8.0;        ///< expected steady call-stack depth

  // --- instruction-level shape (OoO simulator input) ---------------------
  double branch_density = 0.18;   ///< branches per instruction
  double load_frac = 0.25;        ///< of non-branch instructions
  double store_frac = 0.11;
  double fp_frac = 0.05;
  double mul_frac = 0.03;
  unsigned working_set_kb = 256;  ///< data working set (drives cache misses)
  double stream_frac = 0.5;       ///< streaming (prefetch-friendly) accesses
  double dep_chain = 0.35;        ///< P(src = immediately preceding dst)

  std::uint64_t seed = 1;  ///< per-workload seed (name-hashed by registry)

  /// Full-parameter equality — the pregen memo (trace/pregen.h) verifies a
  /// cache hit against it, so a tweaked copy of a canonical profile can
  /// never be served the canonical artifact.
  friend bool operator==(const WorkloadProfile&, const WorkloadProfile&) = default;
};

/// The 23 SPEC CPU 2017 workloads the paper traces (Figure 3's left block)
/// — parameter choices documented in profile.cc.
[[nodiscard]] std::vector<WorkloadProfile> spec2017_profiles();

/// The 14 user/server application traces (Figure 3's right block):
/// apache2 prefork c32..c512, chrome variants, mysql variants, obsstudio.
[[nodiscard]] std::vector<WorkloadProfile> application_profiles();

/// All Figure 3 workloads in presentation order.
[[nodiscard]] std::vector<WorkloadProfile> figure3_profiles();

/// The 18 SPEC workloads used for gem5 single-workload runs (Figure 4).
[[nodiscard]] std::vector<WorkloadProfile> figure4_profiles();

/// Look a profile up by name (throws std::out_of_range if absent).
[[nodiscard]] WorkloadProfile profile_by_name(const std::string& name);

}  // namespace stbpu::trace
