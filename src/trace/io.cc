#include "trace/io.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#define STBPU_HAS_MMAP 1
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace stbpu::trace {

namespace {

/// On-disk record layout (packed, little-endian host assumed for this
/// research tool; 24 bytes per record).
struct PackedRecord {
  std::uint64_t ip;
  std::uint64_t target;
  std::uint8_t type;
  std::uint8_t taken;
  std::uint16_t pid;
  std::uint8_t hart;
  std::uint8_t kernel;
  std::uint16_t pad;
};
static_assert(sizeof(PackedRecord) == 24);

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bpu::BranchRecord unpack(const PackedRecord& p) {
  bpu::BranchRecord r;
  r.ip = p.ip;
  r.target = p.target;
  r.type = static_cast<bpu::BranchType>(p.type);
  r.taken = p.taken != 0;
  r.ctx = {.pid = p.pid, .hart = p.hart, .kernel = p.kernel != 0};
  return r;
}

/// Open a trace, validate the header, and return the record count.
FilePtr open_trace(const std::string& path, std::uint64_t& count) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("cannot open trace: " + path);
  std::uint32_t header[4];
  if (std::fread(header, sizeof(header), 1, f.get()) != 1 || header[0] != kTraceMagic) {
    throw std::runtime_error("bad trace header: " + path);
  }
  if (header[1] != kTraceVersion) {
    throw std::runtime_error("unsupported trace version in " + path);
  }
  count =
      static_cast<std::uint64_t>(header[2]) | (static_cast<std::uint64_t>(header[3]) << 32);
  return f;
}

}  // namespace

bool write_trace(const std::string& path, const std::vector<bpu::BranchRecord>& records) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;
  const std::uint32_t header[4] = {kTraceMagic, kTraceVersion,
                                   static_cast<std::uint32_t>(records.size() & 0xFFFFFFFF),
                                   static_cast<std::uint32_t>(records.size() >> 32)};
  if (std::fwrite(header, sizeof(header), 1, f.get()) != 1) return false;
  for (const auto& r : records) {
    const PackedRecord p{.ip = r.ip,
                         .target = r.target,
                         .type = static_cast<std::uint8_t>(r.type),
                         .taken = r.taken ? std::uint8_t{1} : std::uint8_t{0},
                         .pid = r.ctx.pid,
                         .hart = r.ctx.hart,
                         .kernel = r.ctx.kernel ? std::uint8_t{1} : std::uint8_t{0},
                         .pad = 0};
    if (std::fwrite(&p, sizeof(p), 1, f.get()) != 1) return false;
  }
  return true;
}

std::vector<bpu::BranchRecord> read_trace(const std::string& path) {
  std::uint64_t count = 0;
  FilePtr f = open_trace(path, count);
  std::vector<bpu::BranchRecord> out;
  out.reserve(count);
  PackedRecord block[256];
  std::uint64_t remaining = count;
  while (remaining > 0) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, sizeof(block) / sizeof(block[0])));
    if (std::fread(block, sizeof(PackedRecord), want, f.get()) != want) {
      throw std::runtime_error("truncated trace: " + path);
    }
    for (std::size_t i = 0; i < want; ++i) out.push_back(unpack(block[i]));
    remaining -= want;
  }
  return out;
}

FileStream::FileStream(std::string path, FileStreamMode mode)
    : path_(std::move(path)), mode_(mode) {
  open_and_map();
  buffer_.reserve(kDefaultBatch);
}

FileStream::~FileStream() { unmap(); }

void FileStream::open_and_map() {
  file_.reset(open_trace(path_, count_).release());
#if STBPU_HAS_MMAP
  if (mode_ != FileStreamMode::kBuffered) {
    // Map the whole file read-only; refills then unpack straight from the
    // mapping with no syscalls, and the kernel pages cold regions out
    // under memory pressure — the property that makes very large on-disk
    // traces replayable without a resident copy.
    struct stat st{};
    if (fstat(fileno(file_.get()), &st) != 0) {
      if (mode_ == FileStreamMode::kMmap) {
        throw std::runtime_error("cannot stat trace: " + path_);
      }
      return;  // kAuto: fall back to buffered reads
    }
    // The header over-promises: fail now instead of faulting mid-replay
    // (the fread path reports the same file as truncated read-by-read).
    // Division form — `16 + count * 24` could wrap for a hostile 64-bit
    // count and slip past a `size < need` comparison.
    constexpr std::uint64_t kHeaderBytes = sizeof(std::uint32_t) * 4;
    const auto size = static_cast<std::uint64_t>(st.st_size);
    if (size < kHeaderBytes ||
        count_ > (size - kHeaderBytes) / sizeof(PackedRecord)) {
      throw std::runtime_error("truncated trace: " + path_);
    }
    void* base = mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ,
                      MAP_PRIVATE, fileno(file_.get()), 0);
    if (base == MAP_FAILED) {
      if (mode_ == FileStreamMode::kMmap) {
        throw std::runtime_error("cannot mmap trace: " + path_);
      }
      return;  // kAuto fallback
    }
    map_base_ = base;
    map_len_ = static_cast<std::size_t>(st.st_size);
  }
#else
  if (mode_ == FileStreamMode::kMmap) {
    throw std::runtime_error("mmap unavailable on this platform: " + path_);
  }
#endif
}

void FileStream::unmap() {
#if STBPU_HAS_MMAP
  if (map_base_ != nullptr) munmap(map_base_, map_len_);
#endif
  map_base_ = nullptr;
  map_len_ = 0;
}

std::size_t FileStream::refill() {
  if (buffer_pos_ < buffer_.size()) return buffer_.size() - buffer_pos_;
  buffer_.clear();
  buffer_pos_ = 0;
  // Everything buffered so far has been consumed, so the read cursor is at
  // record `consumed_`.
  const std::uint64_t remaining = count_ - consumed_;
  const std::size_t target =
      static_cast<std::size_t>(std::min<std::uint64_t>(remaining, kDefaultBatch));
  if (map_base_ != nullptr) {
    // mmap path: unpack records straight out of the mapping. memcpy per
    // record keeps the access well-defined regardless of mapping alignment
    // guarantees; compilers lower it to plain loads.
    const unsigned char* src = static_cast<const unsigned char*>(map_base_) +
                               sizeof(std::uint32_t) * 4 +
                               consumed_ * sizeof(PackedRecord);
    for (std::size_t i = 0; i < target; ++i) {
      PackedRecord p;
      std::memcpy(&p, src + i * sizeof(PackedRecord), sizeof(PackedRecord));
      buffer_.push_back(unpack(p));
    }
    return target;
  }
  PackedRecord block[512];
  std::size_t filled = 0;
  while (filled < target) {
    const std::size_t want =
        std::min(target - filled, sizeof(block) / sizeof(block[0]));
    if (std::fread(block, sizeof(PackedRecord), want, file_.get()) != want) {
      throw std::runtime_error("truncated trace: " + path_);
    }
    for (std::size_t i = 0; i < want; ++i) buffer_.push_back(unpack(block[i]));
    filled += want;
  }
  return filled;
}

bool FileStream::next(bpu::BranchRecord& out) {
  if (refill() == 0) return false;
  out = buffer_[buffer_pos_++];
  ++consumed_;
  return true;
}

void FileStream::reset() {
  // Re-validate the header on rewind (the file may have been replaced);
  // the mapping is rebuilt against the fresh file in mmap mode.
  unmap();
  open_and_map();
  consumed_ = 0;
  buffer_.clear();
  buffer_pos_ = 0;
}

std::size_t FileStream::next_batch(BranchBatch& out, std::size_t limit) {
  out.clear();
  while (out.size() < limit) {
    const std::size_t available = refill();
    if (available == 0) break;
    const std::size_t take = std::min(limit - out.size(), available);
    for (std::size_t i = 0; i < take; ++i) out.push_back(buffer_[buffer_pos_ + i]);
    buffer_pos_ += take;
    consumed_ += take;
  }
  return out.size();
}

const bpu::BranchRecord* FileStream::borrow_run(std::size_t limit, std::size_t& n) {
  const std::size_t available = refill();
  if (available == 0 || limit == 0) {
    n = 0;
    return nullptr;
  }
  n = std::min(limit, available);
  const bpu::BranchRecord* run = buffer_.data() + buffer_pos_;
  buffer_pos_ += n;
  consumed_ += n;
  return run;
}

}  // namespace stbpu::trace
