#include "trace/io.h"

#include <cstdio>
#include <memory>
#include <stdexcept>

namespace stbpu::trace {

namespace {

/// On-disk record layout (packed, little-endian host assumed for this
/// research tool; 24 bytes per record).
struct PackedRecord {
  std::uint64_t ip;
  std::uint64_t target;
  std::uint8_t type;
  std::uint8_t taken;
  std::uint16_t pid;
  std::uint8_t hart;
  std::uint8_t kernel;
  std::uint16_t pad;
};
static_assert(sizeof(PackedRecord) == 24);

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

bool write_trace(const std::string& path, const std::vector<bpu::BranchRecord>& records) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;
  const std::uint32_t header[4] = {kTraceMagic, kTraceVersion,
                                   static_cast<std::uint32_t>(records.size() & 0xFFFFFFFF),
                                   static_cast<std::uint32_t>(records.size() >> 32)};
  if (std::fwrite(header, sizeof(header), 1, f.get()) != 1) return false;
  for (const auto& r : records) {
    const PackedRecord p{.ip = r.ip,
                         .target = r.target,
                         .type = static_cast<std::uint8_t>(r.type),
                         .taken = r.taken ? std::uint8_t{1} : std::uint8_t{0},
                         .pid = r.ctx.pid,
                         .hart = r.ctx.hart,
                         .kernel = r.ctx.kernel ? std::uint8_t{1} : std::uint8_t{0},
                         .pad = 0};
    if (std::fwrite(&p, sizeof(p), 1, f.get()) != 1) return false;
  }
  return true;
}

std::vector<bpu::BranchRecord> read_trace(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("cannot open trace: " + path);
  std::uint32_t header[4];
  if (std::fread(header, sizeof(header), 1, f.get()) != 1 || header[0] != kTraceMagic) {
    throw std::runtime_error("bad trace header: " + path);
  }
  if (header[1] != kTraceVersion) {
    throw std::runtime_error("unsupported trace version in " + path);
  }
  const std::uint64_t count =
      static_cast<std::uint64_t>(header[2]) | (static_cast<std::uint64_t>(header[3]) << 32);
  std::vector<bpu::BranchRecord> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    PackedRecord p;
    if (std::fread(&p, sizeof(p), 1, f.get()) != 1) {
      throw std::runtime_error("truncated trace: " + path);
    }
    bpu::BranchRecord r;
    r.ip = p.ip;
    r.target = p.target;
    r.type = static_cast<bpu::BranchType>(p.type);
    r.taken = p.taken != 0;
    r.ctx = {.pid = p.pid, .hart = p.hart, .kernel = p.kernel != 0};
    out.push_back(r);
  }
  return out;
}

}  // namespace stbpu::trace
