// Synthetic workload generator — produces the branch streams the paper
// captures with Intel PT (DESIGN.md substitution #1). The generator builds
// a static "program" per process (conditional/jump/call/indirect sites and
// a call graph laid out in a 48-bit address space, plus one shared kernel
// program) and then walks it statistically while preserving the structure
// real predictors learn from:
//   * conditional sites follow one of four behaviours — heavily biased,
//     fixed-trip loops (emitted as consecutive iteration *bursts* so
//     history-based predictors can learn the exits), branches whose outcome
//     is a function of recent global history (learnable correlation, the
//     bread-and-butter of gshare/TAGE), or data-dependent randomness (the
//     irreducible misprediction floor);
//   * a two-tier hot/cold instruction working set controls BTB pressure;
//   * calls/returns maintain a real call stack so RSB behaviour is honest
//     (depth drifts around `call_depth_bias`, occasionally past the 16-entry
//     RSB — underflows happen, as in real code);
//   * indirect sites rotate among a target set with a switch probability;
//   * syscalls/interrupts insert kernel excursions (mode switches) and
//     context switches move execution between processes, with code either
//     shared (apache/mysql workers) or private (chrome) — the system noise
//     that separates flushing designs from STBPU in Figure 3.
#pragma once

#include <cstdint>
#include <vector>

#include "bpu/types.h"
#include "trace/profile.h"
#include "trace/stream.h"
#include "util/rng.h"

namespace stbpu::trace {

class SyntheticWorkloadGenerator final : public BranchStream {
 public:
  explicit SyntheticWorkloadGenerator(const WorkloadProfile& profile,
                                      std::uint64_t seed_override = 0);

  bool next(bpu::BranchRecord& out) override;
  void reset() override;

  /// Block API: the identical per-record emission sequence written straight
  /// into the SoA batch — one virtual dispatch per batch (the default
  /// implementation pays one per record), feeding sim::replay's batched
  /// loop without an intermediate AoS pass.
  std::size_t next_batch(BranchBatch& out, std::size_t limit = kDefaultBatch) override;

  [[nodiscard]] const WorkloadProfile& profile() const noexcept { return profile_; }
  [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }

 private:
  enum class CondBehavior : std::uint8_t { kBiased, kLoop, kCorrelated, kRandom };

  struct CondSite {
    std::uint64_t ip = 0;
    std::uint64_t target = 0;  ///< taken target (typically backward)
    CondBehavior behavior = CondBehavior::kRandom;
    float taken_prob = 0.5f;   ///< biased/random draw
    std::uint16_t trip = 0;    ///< loop trip count
    std::uint8_t tap1 = 1;     ///< correlated: history tap positions
    std::uint8_t tap2 = 0;     ///< 0 = single-tap
    bool invert = false;
  };
  struct JumpSite {
    std::uint64_t ip = 0;
    std::uint64_t target = 0;
  };
  struct IndirectSite {
    std::uint64_t ip = 0;
    bool is_call = false;
    std::vector<std::uint64_t> targets;
  };
  struct CallSite {
    std::uint64_t ip = 0;
    std::uint32_t callee = 0;  ///< function index
  };
  struct Function {
    std::uint64_t entry = 0;
    std::uint64_t ret_ip = 0;
  };

  /// Static code image; shared between processes when the profile says so.
  struct Program {
    std::vector<CondSite> conds;
    std::vector<JumpSite> jumps;
    std::vector<CallSite> calls;
    std::vector<IndirectSite> indirects;
    std::vector<Function> functions;
  };

  /// Per-process dynamic state (independent even over shared code).
  struct ProcessState {
    std::uint16_t pid = 0;
    std::uint32_t program = 0;
    std::uint64_t history = 0;  ///< this process's global outcome history
    std::vector<std::uint16_t> loop_iter;    // per cond site
    std::vector<std::uint8_t> ind_current;   // per indirect site
    struct Frame {
      std::uint64_t ret_addr;
      std::uint32_t fn;
    };
    std::vector<Frame> stack;
    // Active loop burst: keep emitting this site's iterations (interleaved
    // with body branches) until the exit is emitted.
    std::int64_t burst_site = -1;
  };

  Program build_program(std::uint64_t base, util::Xoshiro256& rng) const;
  Program build_kernel_program(util::Xoshiro256& rng) const;
  void init_dynamic_state();
  [[nodiscard]] std::size_t pick_site(std::size_t n);
  [[nodiscard]] bool cond_outcome(const CondSite& s, ProcessState& ps, std::size_t idx);
  bpu::BranchRecord emit_conditional(ProcessState& ps, std::size_t idx);
  bpu::BranchRecord emit_user_branch(ProcessState& ps);
  bpu::BranchRecord emit_kernel_branch();

  WorkloadProfile profile_;
  std::uint64_t seed_;
  util::Xoshiro256 rng_;

  std::vector<Program> programs_;
  Program kernel_;
  std::vector<ProcessState> processes_;
  std::uint64_t kernel_history_ = 0;

  std::size_t current_proc_ = 0;
  std::uint32_t kernel_remaining_ = 0;  ///< branches left in kernel excursion
  bool switch_after_kernel_ = false;    ///< context switch pending
  std::uint64_t emitted_ = 0;
};

}  // namespace stbpu::trace
