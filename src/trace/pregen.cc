#include "trace/pregen.h"

#include <map>
#include <mutex>
#include <tuple>
#include <utility>

namespace stbpu::trace {

std::shared_ptr<const InstrTrace> generate_instr_trace(const WorkloadProfile& profile,
                                                       std::uint64_t count,
                                                       std::uint64_t seed_override) {
  auto trace = std::make_shared<InstrTrace>();
  trace->profile = profile;
  trace->seed = seed_override ? seed_override : profile.seed;
  trace->block.reserve(static_cast<std::size_t>(count));

  // One block fill of the whole run: the generator writes the SoA arrays
  // directly (SyntheticInstrGenerator::next_block), so the artifact is the
  // per-record sequence verbatim.
  SyntheticInstrGenerator gen(profile, seed_override);
  gen.next_block(trace->block, static_cast<std::size_t>(count));
  return trace;
}

namespace {

using TraceKey = std::tuple<std::string, std::uint64_t, std::uint64_t>;

struct CachedTrace {
  std::shared_ptr<const InstrTrace> trace;
  std::uint64_t last_use = 0;
};

/// Memo size bound: enough for every distinct profile a fig5 sweep touches
/// at once; beyond it the least-recently-requested artifact is dropped
/// (outstanding cursors keep theirs alive through their shared_ptr).
constexpr std::size_t kMaxCachedTraces = 16;

std::mutex& cache_mutex() {
  static std::mutex m;
  return m;
}

std::map<TraceKey, CachedTrace>& cache() {
  static std::map<TraceKey, CachedTrace> c;
  return c;
}

}  // namespace

std::shared_ptr<const InstrTrace> shared_instr_trace(const WorkloadProfile& profile,
                                                     std::uint64_t count,
                                                     std::uint64_t seed_override) {
  static std::uint64_t use_clock = 0;
  const TraceKey key{profile.name, seed_override ? seed_override : profile.seed, count};
  // Generation happens under the lock on purpose: concurrent pool workers
  // asking for the same trace must share one generation, and the workers
  // asking for *different* traces (fig5 pairs) are themselves parallel
  // across processes/shards, so serializing the odd first-touch here costs
  // one generation per artifact per process.
  std::lock_guard<std::mutex> lock(cache_mutex());
  auto& c = cache();
  CachedTrace& slot = c[key];
  // A hit must match the FULL profile, not just the key: a tweaked copy of
  // a canonical profile (same name, different knobs) regenerates rather
  // than silently replaying the canonical stream.
  if (slot.trace && !(slot.trace->profile == profile)) slot.trace.reset();
  if (!slot.trace) {
    slot.trace = generate_instr_trace(profile, count, seed_override);
    if (c.size() > kMaxCachedTraces) {
      auto lru = c.end();
      for (auto it = c.begin(); it != c.end(); ++it) {
        if (it->first != key && (lru == c.end() || it->second.last_use < lru->second.last_use)) {
          lru = it;
        }
      }
      if (lru != c.end()) c.erase(lru);
    }
  }
  slot.last_use = ++use_clock;
  return slot.trace;
}

void clear_instr_trace_cache() {
  std::lock_guard<std::mutex> lock(cache_mutex());
  cache().clear();
}

}  // namespace stbpu::trace
