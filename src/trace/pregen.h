// Pregenerated SoA instruction traces — the reusable artifact form of the
// synthetic workload. The cycle-level scenarios replay the same
// (profile, seed) instruction stream many times per sweep (two ST arms ×
// four direction predictors × repetition loops); generating it on the fly
// each run was ~25% of the OoO step cost (ROADMAP gprof profile). An
// InstrTrace is generated ONCE per (profile name, seed, count) and every
// run replays it through an InstrTraceStream cursor whose borrow_block()
// hands the core's lookahead window pointers straight into the shared SoA
// arrays — zero copies, zero RNG draws, bit-identical records by
// construction (the artifact is filled by the same SyntheticInstrGenerator
// the on-the-fly path runs; tests/trace/instr_block_test.cc asserts
// equality record by record and through the cores).
//
// Ownership contract: InstrTrace is immutable after generation and shared
// via shared_ptr — cursors are cheap, independent (each holds its own
// position), and safe to use concurrently from the experiment pool's
// worker threads. The process-wide memo (shared_instr_trace) is
// mutex-guarded; clear_instr_trace_cache() drops the cache's references
// (outstanding cursors keep their artifact alive).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "trace/instr.h"
#include "trace/profile.h"

namespace stbpu::trace {

/// Whole-run pregenerated instruction trace (immutable after generation).
struct InstrTrace {
  WorkloadProfile profile;  ///< the exact generator parameters used
  std::uint64_t seed = 0;   ///< effective seed (override applied)
  InstrBlock block;

  [[nodiscard]] std::size_t size() const noexcept { return block.size(); }
};

/// Generate `count` instructions of `profile` into one SoA artifact.
[[nodiscard]] std::shared_ptr<const InstrTrace> generate_instr_trace(
    const WorkloadProfile& profile, std::uint64_t count,
    std::uint64_t seed_override = 0);

/// Memoized generation: the same (profile.name, effective seed, count)
/// returns the same shared artifact, generated once. A hit is verified
/// against the FULL profile parameters — a same-named profile with any
/// knob changed regenerates instead of silently replaying the canonical
/// stream. Thread-safe (the scenario pool requests the same trace from
/// many workers at once; the first requester generates, the rest wait and
/// share).
[[nodiscard]] std::shared_ptr<const InstrTrace> shared_instr_trace(
    const WorkloadProfile& profile, std::uint64_t count,
    std::uint64_t seed_override = 0);

/// Drop the memo's references (tests / memory pressure). Outstanding
/// streams keep their artifacts alive.
void clear_instr_trace_cache();

/// Replay cursor over a pregenerated trace. borrow_block() is the fast
/// path: it lends [pos, pos+n) of the shared block without copying.
class InstrTraceStream final : public InstrStream {
 public:
  explicit InstrTraceStream(std::shared_ptr<const InstrTrace> trace)
      : trace_(std::move(trace)) {}

  bool next(InstrRecord& out) override {
    const InstrBlock& b = trace_->block;
    if (pos_ >= b.size()) return false;
    out = b.record(pos_++);
    return true;
  }

  void reset() override { pos_ = 0; }

  std::size_t next_block(InstrBlock& out, std::size_t limit) override {
    const InstrBlock& b = trace_->block;
    out.clear();
    const std::size_t n = std::min(limit, b.size() - pos_);
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(b.record(pos_ + i));
    pos_ += n;
    return n;
  }

  const InstrBlock* borrow_block(std::size_t limit, std::size_t& start,
                                 std::size_t& n) override {
    const InstrBlock& b = trace_->block;
    n = std::min(limit, b.size() - pos_);
    if (n == 0) return nullptr;
    start = pos_;
    pos_ += n;
    return &b;
  }

  [[nodiscard]] bool contiguous() const noexcept override { return true; }

  [[nodiscard]] const std::shared_ptr<const InstrTrace>& trace() const noexcept {
    return trace_;
  }

 private:
  std::shared_ptr<const InstrTrace> trace_;
  std::size_t pos_ = 0;
};

}  // namespace stbpu::trace
