#include "trace/profile.h"

#include <functional>
#include <stdexcept>
#include <unordered_map>

namespace stbpu::trace {

namespace {

std::uint64_t name_seed(const std::string& name) {
  // Stable per-workload seed: FNV-1a over the name.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h | 1;
}

/// Compute-bound SPEC baseline: rare syscalls (I/O, page faults), timer
/// interrupts, single process.
WorkloadProfile spec_base(std::string name) {
  WorkloadProfile p;
  p.name = std::move(name);
  p.syscall_rate = 8e-4;   // library I/O, page-fault handling
  p.context_switch_rate = 8e-5;  // timer-driven reschedules, daemons
  p.interrupt_rate = 2e-5;
  p.num_processes = 2;  // the workload + background system activity
  p.primary_process_weight = 0.88;
  p.seed = name_seed(p.name);
  return p;
}

/// Highly regular FP/stencil workload: few hard branches, long loops.
void make_regular_fp(WorkloadProfile& p, unsigned sites, unsigned ws_kb) {
  p.static_branches = sites;
  p.biased_frac = 0.68;
  p.loop_frac = 0.22;
  p.pattern_frac = 0.08;
  p.hard_taken_prob = 0.85;  // the rare "hard" fp branches are mostly taken
  p.max_trip_count = 32;
  p.frac_call = 0.04;
  p.frac_direct_jump = 0.03;
  p.frac_indirect = 0.004;
  p.branch_density = 0.08;
  p.fp_frac = 0.45;
  p.load_frac = 0.30;
  p.working_set_kb = ws_kb;
  p.stream_frac = 0.85;
  p.dep_chain = 0.25;  // vectorizable independent iterations
  p.site_skew = 2.2;
}

/// Control-heavy integer workload with data-dependent branches.
void make_irregular_int(WorkloadProfile& p, unsigned sites, double hard_frac,
                        unsigned ws_kb) {
  p.static_branches = sites;
  // hard fraction = 1 - biased - loop - pattern
  p.biased_frac = 0.48 - hard_frac * 0.25;
  p.loop_frac = 0.16;
  p.pattern_frac = 1.0 - p.biased_frac - p.loop_frac - hard_frac;
  p.hard_taken_prob = 0.52;
  p.frac_call = 0.11;
  p.frac_direct_jump = 0.06;
  p.frac_indirect = 0.015;
  p.branch_density = 0.21;
  p.fp_frac = 0.01;
  p.working_set_kb = ws_kb;
  p.stream_frac = 0.35;
  p.dep_chain = 0.45;
  p.site_skew = 1.5;
}

std::vector<WorkloadProfile> spec_short_profiles() {
  std::vector<WorkloadProfile> out;
  auto add = [&out](const char* name,
                    const std::function<void(WorkloadProfile&)>& tune) {
    WorkloadProfile p = spec_base(name);
    tune(p);
    out.push_back(std::move(p));
  };

  add("perlbench", [](WorkloadProfile& p) {  // interpreter: calls + indirect
    make_irregular_int(p, 14000, 0.02, 512);
    p.frac_call = 0.16;
    p.frac_indirect = 0.05;
    p.indirect_targets = 12;
    p.indirect_switch_prob = 0.3;
    p.call_depth_bias = 14.0;
  });
  add("gcc", [](WorkloadProfile& p) {  // huge footprint compiler
    make_irregular_int(p, 32000, 0.05, 2048);
    p.frac_call = 0.13;
    p.frac_indirect = 0.03;
    p.indirect_targets = 8;
    p.hot_ratio = 0.78;   // flat reuse — stresses BTB capacity
    p.hot_divisor = 8;
  });
  add("bwaves", [](WorkloadProfile& p) { make_regular_fp(p, 900, 12288); });
  add("mcf", [](WorkloadProfile& p) {  // pointer chasing, very hard branches
    make_irregular_int(p, 1600, 0.16, 8192);
    p.hard_taken_prob = 0.50;
    p.stream_frac = 0.10;
    p.dep_chain = 0.8;  // pointer chasing: load-to-load serial chains
    p.branch_density = 0.24;
  });
  add("cactuBSSN", [](WorkloadProfile& p) { make_regular_fp(p, 2600, 4096); });
  add("namd", [](WorkloadProfile& p) {
    make_regular_fp(p, 1400, 1024);
    p.biased_frac = 0.60;
    p.pattern_frac = 0.16;
  });
  add("parest", [](WorkloadProfile& p) {
    make_regular_fp(p, 5200, 2048);
    p.frac_call = 0.09;
    p.biased_frac = 0.50;
  });
  add("povray", [](WorkloadProfile& p) {  // ray tracer: calls + mixed branch
    make_irregular_int(p, 7000, 0.03, 256);
    p.fp_frac = 0.30;
    p.frac_call = 0.14;
    p.call_depth_bias = 18.0;  // deep recursion — RSB pressure
  });
  add("lbm", [](WorkloadProfile& p) {
    make_regular_fp(p, 420, 6144);
    p.branch_density = 0.04;
  });
  add("omnetpp", [](WorkloadProfile& p) {  // discrete events, virtual calls
    make_irregular_int(p, 9000, 0.07, 4096);
    p.frac_indirect = 0.05;
    p.indirect_targets = 10;
    p.stream_frac = 0.15;
  });
  add("wrf", [](WorkloadProfile& p) { make_regular_fp(p, 6400, 3072); });
  add("xalancbmk", [](WorkloadProfile& p) {  // XSLT: virtual-call heavy
    make_irregular_int(p, 12000, 0.03, 1024);
    p.frac_indirect = 0.07;
    p.indirect_targets = 14;
    p.indirect_switch_prob = 0.35;
  });
  add("x264", [](WorkloadProfile& p) {  // video encode: regular + some hard
    make_regular_fp(p, 3800, 1024);
    p.biased_frac = 0.45;
    p.loop_frac = 0.28;
    p.pattern_frac = 0.17;
    p.branch_density = 0.12;
    p.fp_frac = 0.10;
  });
  add("blender", [](WorkloadProfile& p) {
    make_irregular_int(p, 11000, 0.04, 512);
    p.fp_frac = 0.25;
  });
  add("cam4", [](WorkloadProfile& p) { make_regular_fp(p, 7600, 2048); });
  add("deepsjeng", [](WorkloadProfile& p) {  // alpha-beta search
    make_irregular_int(p, 3200, 0.11, 512);
    p.call_depth_bias = 24.0;  // deep recursion
    p.hard_taken_prob = 0.47;
  });
  add("imagick", [](WorkloadProfile& p) {
    make_regular_fp(p, 2400, 768);
    p.biased_frac = 0.54;
    p.loop_frac = 0.36;
  });
  add("leela", [](WorkloadProfile& p) {  // MCTS: hardest branches
    make_irregular_int(p, 2600, 0.22, 256);
    p.hard_taken_prob = 0.5;
    p.frac_call = 0.13;
  });
  add("nab", [](WorkloadProfile& p) { make_regular_fp(p, 1800, 512); });
  add("exchange2", [](WorkloadProfile& p) {  // branchy but regular puzzles
    make_irregular_int(p, 2100, 0.015, 64);
    p.biased_frac = 0.38;
    p.loop_frac = 0.34;
    p.pattern_frac = 0.25;
    p.branch_density = 0.27;
    p.call_depth_bias = 20.0;
  });
  add("fotonik3d", [](WorkloadProfile& p) { make_regular_fp(p, 1300, 8192); });
  add("roms", [](WorkloadProfile& p) { make_regular_fp(p, 3400, 4096); });
  add("xz", [](WorkloadProfile& p) {  // compression: data-dependent
    make_irregular_int(p, 1900, 0.11, 2048);
    p.pattern_frac = 0.22;
    p.stream_frac = 0.45;
  });
  return out;
}

WorkloadProfile app_base(std::string name) {
  WorkloadProfile p;
  p.name = std::move(name);
  p.seed = name_seed(p.name);
  return p;
}

std::vector<WorkloadProfile> app_profiles_impl() {
  std::vector<WorkloadProfile> out;

  // Apache2 prefork: N workers run identical code; heavy syscall traffic
  // and scheduling churn grows with concurrency. Flushing designs lose the
  // whole shared-history advantage on every switch — STBPU's share-group
  // story (paper §IV-A).
  const struct {
    const char* name;
    unsigned conns;
  } apache[] = {{"apache2_prefork_c32", 32},
                {"apache2_prefork_c64", 64},
                {"apache2_prefork_c128", 128},
                {"apache2_prefork_c256", 256},
                {"apache2_prefork_c512", 512}};
  for (const auto& a : apache) {
    WorkloadProfile p = app_base(a.name);
    p.static_branches = 9000;
    p.kernel_branches = 2600;  // network stack + VFS
    // Server request handling is bias/correlation heavy, not loop heavy —
    // which is also what lets prefork workers share useful history.
    p.biased_frac = 0.52;
    p.loop_frac = 0.08;
    p.pattern_frac = 0.22;
    p.frac_call = 0.14;
    p.frac_indirect = 0.03;
    p.indirect_targets = 8;
    p.syscall_rate = 0.012;  // accept/read/write per request
    p.context_switch_rate = 8e-4 + 6e-4 * (a.conns / 128.0);
    p.num_processes = 2 + a.conns / 64;  // active worker subset
    p.processes_share_code = true;
    p.working_set_kb = 512;
    p.branch_density = 0.19;
    out.push_back(std::move(p));
  }

  // Chrome: isolated renderer processes with distinct JITted code, heavy
  // indirect branching, moderate kernel interaction.
  const char* chrome[] = {"chrome-1je_1mo_1sp", "chrome-1jetstream",
                          "chrome-1motionmark", "chrome-1speedometer"};
  for (unsigned i = 0; i < 4; ++i) {
    WorkloadProfile p = app_base(chrome[i]);
    p.static_branches = 26000;
    p.kernel_branches = 1800;
    p.biased_frac = 0.40;
    p.loop_frac = 0.18;
    p.pattern_frac = 0.24;
    p.frac_call = 0.15;
    p.frac_indirect = 0.06;  // IC stubs, dispatch
    p.indirect_targets = 16;
    p.indirect_switch_prob = 0.3;
    p.syscall_rate = 0.004;
    p.context_switch_rate = i == 0 ? 2.4e-3 : 1e-3;  // 3 tabs vs 1 tab
    p.num_processes = i == 0 ? 6 : 3;
    p.processes_share_code = false;
    p.working_set_kb = 4096;
    p.hot_ratio = 0.82;  // JITted code spreads the footprint
    out.push_back(std::move(p));
  }

  // MySQL: thread pool on shared code, lock-handoff context switches grow
  // with connection count, syscall-heavy.
  const struct {
    const char* name;
    unsigned conns;
  } mysql[] = {{"mysql_32con_50s", 32},
               {"mysql_64con_50s", 64},
               {"mysql_128con_50s", 128},
               {"mysql_256con_50s", 256}};
  for (const auto& m : mysql) {
    WorkloadProfile p = app_base(m.name);
    p.static_branches = 15000;
    p.kernel_branches = 2200;
    p.biased_frac = 0.54;
    p.loop_frac = 0.08;
    p.pattern_frac = 0.21;
    p.frac_call = 0.13;
    p.frac_indirect = 0.035;
    p.indirect_targets = 10;
    p.syscall_rate = 0.009;
    p.context_switch_rate = 6e-4 + 5e-4 * (m.conns / 128.0);
    p.num_processes = 2 + m.conns / 48;
    p.processes_share_code = true;
    p.working_set_kb = 8192;
    out.push_back(std::move(p));
  }

  // OBS Studio: capture/encode pipeline, fewer switches, FP-ish encode.
  {
    WorkloadProfile p = app_base("obsstudio_30s");
    p.static_branches = 13000;
    p.kernel_branches = 1500;
    p.biased_frac = 0.46;
    p.loop_frac = 0.24;
    p.pattern_frac = 0.16;
    p.frac_call = 0.12;
    p.frac_indirect = 0.03;
    p.syscall_rate = 0.003;
    p.context_switch_rate = 6e-4;
    p.num_processes = 3;
    p.fp_frac = 0.2;
    p.working_set_kb = 2048;
    out.push_back(std::move(p));
  }
  return out;
}

const std::unordered_map<std::string, const char*>& fig3_numbering() {
  static const std::unordered_map<std::string, const char*> kMap = {
      {"perlbench", "500.perlbench"}, {"gcc", "502.gcc"},
      {"bwaves", "503.bwaves"},       {"mcf", "505.mcf"},
      {"cactuBSSN", "507.cactuBSSN"}, {"namd", "508.namd"},
      {"parest", "510.parest"},       {"povray", "511.povray"},
      {"lbm", "519.lbm"},             {"omnetpp", "520.omnetpp"},
      {"wrf", "521.wrf"},             {"xalancbmk", "523.xalancbmk"},
      {"x264", "525.x264"},           {"blender", "526.blender"},
      {"cam4", "527.cam4"},           {"deepsjeng", "531.deepsjeng"},
      {"imagick", "538.imagick"},     {"leela", "541.leela"},
      {"nab", "544.nab"},             {"exchange2", "548.exchange2"},
      {"fotonik3d", "549.fotonik3d"}, {"roms", "554.roms"},
      {"xz", "557.xz"}};
  return kMap;
}

}  // namespace

std::vector<WorkloadProfile> spec2017_profiles() {
  std::vector<WorkloadProfile> out = spec_short_profiles();
  for (auto& p : out) {
    const auto it = fig3_numbering().find(p.name);
    if (it != fig3_numbering().end()) p.name = it->second;
  }
  return out;
}

std::vector<WorkloadProfile> application_profiles() { return app_profiles_impl(); }

std::vector<WorkloadProfile> figure3_profiles() {
  std::vector<WorkloadProfile> out = spec2017_profiles();
  auto apps = application_profiles();
  out.insert(out.end(), std::make_move_iterator(apps.begin()),
             std::make_move_iterator(apps.end()));
  return out;
}

std::vector<WorkloadProfile> figure4_profiles() {
  // The 18 workloads of Figures 4/5, in the paper's axis order.
  static const char* kNames[] = {"fotonik3d", "x264",   "exchange2", "deepsjeng",
                                 "roms",      "mcf",    "nab",       "cam4",
                                 "namd",      "xalancbmk", "parest", "bwaves",
                                 "wrf",       "imagick", "leela",    "blender",
                                 "xz",        "lbm"};
  std::vector<WorkloadProfile> out;
  for (const char* n : kNames) out.push_back(profile_by_name(n));
  return out;
}

WorkloadProfile profile_by_name(const std::string& name) {
  for (const auto& p : spec_short_profiles()) {
    if (p.name == name) return p;
  }
  for (const auto& p : spec2017_profiles()) {
    if (p.name == name) return p;
  }
  for (const auto& p : app_profiles_impl()) {
    if (p.name == name) return p;
  }
  throw std::out_of_range("unknown workload profile: " + name);
}

}  // namespace stbpu::trace
