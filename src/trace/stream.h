// Branch-trace streaming interfaces. Traces can be generated on the fly
// (SyntheticWorkloadGenerator), replayed from memory (VectorStream) or from
// disk (trace/io.h) — the simulators only see this interface, mirroring how
// the paper's in-house simulator consumes Intel PT branch streams.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "bpu/types.h"

namespace stbpu::trace {

class BranchStream {
 public:
  virtual ~BranchStream() = default;
  /// Produce the next dynamic branch; returns false at end of trace.
  virtual bool next(bpu::BranchRecord& out) = 0;
  /// Rewind to the beginning (same sequence again — streams are
  /// deterministic so every model sees the identical trace).
  virtual void reset() = 0;
};

/// Replays a materialized trace.
class VectorStream final : public BranchStream {
 public:
  explicit VectorStream(std::vector<bpu::BranchRecord> records)
      : records_(std::move(records)) {}

  bool next(bpu::BranchRecord& out) override {
    if (pos_ >= records_.size()) return false;
    out = records_[pos_++];
    return true;
  }
  void reset() override { pos_ = 0; }

  [[nodiscard]] const std::vector<bpu::BranchRecord>& records() const {
    return records_;
  }

 private:
  std::vector<bpu::BranchRecord> records_;
  std::size_t pos_ = 0;
};

/// Caps a stream at `limit` branches (warm-up / budget windows).
class LimitStream final : public BranchStream {
 public:
  LimitStream(BranchStream* inner, std::uint64_t limit)
      : inner_(inner), limit_(limit) {}
  bool next(bpu::BranchRecord& out) override {
    if (count_ >= limit_) return false;
    if (!inner_->next(out)) return false;
    ++count_;
    return true;
  }
  void reset() override {
    inner_->reset();
    count_ = 0;
  }

 private:
  BranchStream* inner_;
  std::uint64_t limit_;
  std::uint64_t count_ = 0;
};

/// Materialize up to `limit` records from a stream.
inline std::vector<bpu::BranchRecord> collect(BranchStream& s, std::uint64_t limit) {
  std::vector<bpu::BranchRecord> out;
  out.reserve(limit);
  bpu::BranchRecord r;
  while (out.size() < limit && s.next(r)) out.push_back(r);
  return out;
}

}  // namespace stbpu::trace
