// Branch-trace streaming interfaces. Traces can be generated on the fly
// (SyntheticWorkloadGenerator), replayed from memory (VectorStream) or from
// disk (trace/io.h) — the simulators only see this interface, mirroring how
// the paper's in-house simulator consumes Intel PT branch streams.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "bpu/types.h"
#include "trace/batch.h"

namespace stbpu::trace {

class BranchStream {
 public:
  virtual ~BranchStream() = default;
  /// Produce the next dynamic branch; returns false at end of trace.
  virtual bool next(bpu::BranchRecord& out) = 0;
  /// Rewind to the beginning (same sequence again — streams are
  /// deterministic so every model sees the identical trace).
  virtual void reset() = 0;

  /// Refill `out` with up to `limit` branches (SoA). Returns the number
  /// produced; 0 means end of trace. The default amortizes the virtual
  /// dispatch over one call per batch; materialized streams bulk-copy.
  virtual std::size_t next_batch(BranchBatch& out, std::size_t limit = kDefaultBatch) {
    out.clear();
    bpu::BranchRecord r;
    while (out.size() < limit && next(r)) out.push_back(r);
    return out.size();
  }

  /// Zero-copy fast path: expose up to `limit` already-materialized records
  /// and advance past them. Returns nullptr (n = 0) when the stream has no
  /// contiguous backing storage (generators) — callers fall back to
  /// next_batch. The pointer stays valid until the next stream mutation.
  virtual const bpu::BranchRecord* borrow_run(std::size_t limit, std::size_t& n) {
    (void)limit;
    n = 0;
    return nullptr;
  }
};

/// Replays a materialized trace.
class VectorStream final : public BranchStream {
 public:
  explicit VectorStream(std::vector<bpu::BranchRecord> records)
      : records_(std::move(records)) {}

  bool next(bpu::BranchRecord& out) override {
    if (pos_ >= records_.size()) return false;
    out = records_[pos_++];
    return true;
  }
  void reset() override { pos_ = 0; }

  std::size_t next_batch(BranchBatch& out, std::size_t limit = kDefaultBatch) override {
    out.clear();
    const std::size_t n = std::min(limit, records_.size() - pos_);
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) out.push_back(records_[pos_ + i]);
    pos_ += n;
    return n;
  }

  const bpu::BranchRecord* borrow_run(std::size_t limit, std::size_t& n) override {
    n = std::min(limit, records_.size() - pos_);
    if (n == 0) return nullptr;
    const bpu::BranchRecord* run = records_.data() + pos_;
    pos_ += n;
    return run;
  }

  [[nodiscard]] const std::vector<bpu::BranchRecord>& records() const {
    return records_;
  }

 private:
  std::vector<bpu::BranchRecord> records_;
  std::size_t pos_ = 0;
};

/// Caps a stream at `limit` branches (warm-up / budget windows).
class LimitStream final : public BranchStream {
 public:
  LimitStream(BranchStream* inner, std::uint64_t limit)
      : inner_(inner), limit_(limit) {}
  bool next(bpu::BranchRecord& out) override {
    if (count_ >= limit_) return false;
    if (!inner_->next(out)) return false;
    ++count_;
    return true;
  }
  void reset() override {
    inner_->reset();
    count_ = 0;
  }

  const bpu::BranchRecord* borrow_run(std::size_t limit, std::size_t& n) override {
    if (count_ >= limit_) {
      n = 0;
      return nullptr;
    }
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(limit, limit_ - count_));
    const bpu::BranchRecord* run = inner_->borrow_run(want, n);
    count_ += n;
    return run;
  }

 private:
  BranchStream* inner_;
  std::uint64_t limit_;
  std::uint64_t count_ = 0;
};

/// Materialize up to `limit` records from a stream.
inline std::vector<bpu::BranchRecord> collect(BranchStream& s, std::uint64_t limit) {
  std::vector<bpu::BranchRecord> out;
  out.reserve(limit);
  bpu::BranchRecord r;
  while (out.size() < limit && s.next(r)) out.push_back(r);
  return out;
}

}  // namespace stbpu::trace
