// Instruction-level trace records for the cycle-level OoO simulator
// (DESIGN.md substitution #2). The generator wraps a branch stream and
// fills the gaps between branches with basic blocks whose instruction mix,
// register dependencies and memory locality follow the workload profile —
// what the Table IV machine model needs to produce IPC that responds to
// branch mispredictions and cache behaviour.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>

#include "bpu/types.h"
#include "trace/generator.h"
#include "trace/profile.h"
#include "trace/stream.h"
#include "util/rng.h"

namespace stbpu::trace {

struct InstrRecord {
  enum class Kind : std::uint8_t { kAlu, kMul, kDiv, kFp, kLoad, kStore, kBranch };
  Kind kind = Kind::kAlu;
  std::uint8_t dst = 0;   ///< architectural destination register (0 = none)
  std::uint8_t src1 = 0;  ///< 0 = no register dependency (ready operand)
  std::uint8_t src2 = 0;
  bool streaming = false;      ///< unit-stride access (prefetcher-friendly)
  std::uint64_t mem_addr = 0;  ///< loads/stores
  bpu::BranchRecord branch;    ///< valid when kind == kBranch
};

class InstrStream {
 public:
  virtual ~InstrStream() = default;
  virtual bool next(InstrRecord& out) = 0;
  virtual void reset() = 0;
};

/// Statistical basic-block expansion around a branch stream.
class SyntheticInstrGenerator final : public InstrStream {
 public:
  explicit SyntheticInstrGenerator(const WorkloadProfile& profile,
                                   std::uint64_t seed_override = 0)
      : profile_(profile),
        branches_(profile, seed_override),
        rng_((seed_override ? seed_override : profile.seed) ^ 0x1257ULL) {}

  bool next(InstrRecord& out) override {
    if (block_remaining_ == 0) {
      // Emit the branch ending the previous block, then size the next one.
      if (pending_branch_) {
        out = InstrRecord{};
        out.kind = InstrRecord::Kind::kBranch;
        out.branch = branch_;
        pending_branch_ = false;
        return true;
      }
      branches_.next(branch_);
      pending_branch_ = true;
      // Geometric block length with mean 1/density - 1 (>= 1).
      const double mean =
          std::max(1.0, 1.0 / std::max(0.01, profile_.branch_density) - 1.0);
      block_remaining_ = 1 + static_cast<unsigned>(-mean * std::log(1.0 - rng_.uniform()));
      if (block_remaining_ > 64) block_remaining_ = 64;
      // Dependency chains break at block boundaries: loop iterations and
      // separate blocks are mostly independent work (the source of ILP and
      // memory-level parallelism in real code).
      in_block_chain_ = false;
    }
    --block_remaining_;
    out = make_instr();
    return true;
  }

  void reset() override {
    branches_.reset();
    rng_ = util::Xoshiro256(profile_.seed ^ 0x1257ULL);
    block_remaining_ = 0;
    pending_branch_ = false;
    stream_ptr_ = 0;
    last_dst_ = 1;
  }

  [[nodiscard]] const WorkloadProfile& profile() const noexcept { return profile_; }

 private:
  InstrRecord make_instr() {
    InstrRecord r;
    const double u = rng_.uniform();
    double acc = profile_.load_frac;
    if (u < acc) {
      r.kind = InstrRecord::Kind::kLoad;
      data_address(r);
    } else if (u < (acc += profile_.store_frac)) {
      r.kind = InstrRecord::Kind::kStore;
      data_address(r);
    } else if (u < (acc += profile_.fp_frac)) {
      r.kind = InstrRecord::Kind::kFp;
    } else if (u < (acc += profile_.mul_frac)) {
      r.kind = InstrRecord::Kind::kMul;
    } else if (u < acc + 0.002) {
      r.kind = InstrRecord::Kind::kDiv;
    } else {
      r.kind = InstrRecord::Kind::kAlu;
    }
    // Register assignment: rotating destinations. With probability
    // `dep_chain` the first source is the previous destination (a serial
    // chain); otherwise operands are frequently already available
    // (constants, loop invariants, registers written long ago) — that
    // sparsity is what exposes ILP and memory-level parallelism.
    r.dst = static_cast<std::uint8_t>(1 + (last_dst_ % 31));
    if (in_block_chain_ && rng_.chance(profile_.dep_chain)) {
      r.src1 = last_dst_;  // serial chain within the current block
    } else if (rng_.chance(0.2)) {
      r.src1 = static_cast<std::uint8_t>(1 + rng_.below(31));
    }
    if (rng_.chance(0.15)) {
      r.src2 = static_cast<std::uint8_t>(1 + rng_.below(31));
    }
    last_dst_ = r.dst;
    ++last_dst_;
    in_block_chain_ = true;
    return r;
  }

  void data_address(InstrRecord& r) {
    const std::uint64_t ws_bytes = std::uint64_t{profile_.working_set_kb} * 1024;
    const std::uint64_t heap = 0x0000'7000'0000ULL;
    if (rng_.chance(profile_.stream_frac)) {
      stream_ptr_ = (stream_ptr_ + 8) % ws_bytes;  // unit-stride stream
      r.mem_addr = heap + stream_ptr_;
      r.streaming = true;
      return;
    }
    // Non-streaming accesses are still locality-skewed: most land in a hot
    // region (stack frames, hot nodes); the rest roam the full working set.
    const std::uint64_t hot_bytes =
        std::min<std::uint64_t>(ws_bytes, 512 * 1024);
    const std::uint64_t span = rng_.chance(0.8) ? hot_bytes : ws_bytes;
    r.mem_addr = heap + (rng_.below(span) & ~std::uint64_t{7});
  }

  WorkloadProfile profile_;
  SyntheticWorkloadGenerator branches_;
  util::Xoshiro256 rng_;
  unsigned block_remaining_ = 0;
  bool pending_branch_ = false;
  bool in_block_chain_ = false;
  bpu::BranchRecord branch_;
  std::uint64_t stream_ptr_ = 0;
  std::uint8_t last_dst_ = 1;
};

}  // namespace stbpu::trace
