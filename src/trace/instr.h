// Instruction-level trace records for the cycle-level OoO simulator
// (DESIGN.md substitution #2). The generator wraps a branch stream and
// fills the gaps between branches with basic blocks whose instruction mix,
// register dependencies and memory locality follow the workload profile —
// what the Table IV machine model needs to produce IPC that responds to
// branch mispredictions and cache behaviour.
//
// Streams are block-capable: next_block() fills a structure-of-arrays
// InstrBlock (one virtual dispatch per block instead of per instruction,
// mirroring trace/batch.h's BranchBatch for the branch-replay loop), and
// borrow_block() exposes already-materialized blocks zero-copy — the OoO
// cores' lookahead windows consume pregenerated traces (trace/pregen.h) by
// pointer, regenerating nothing.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "bpu/types.h"
#include "trace/generator.h"
#include "trace/profile.h"
#include "trace/stream.h"
#include "util/rng.h"

namespace stbpu::trace {

struct InstrRecord {
  enum class Kind : std::uint8_t { kAlu, kMul, kDiv, kFp, kLoad, kStore, kBranch };
  Kind kind = Kind::kAlu;
  std::uint8_t dst = 0;   ///< architectural destination register (0 = none)
  std::uint8_t src1 = 0;  ///< 0 = no register dependency (ready operand)
  std::uint8_t src2 = 0;
  bool streaming = false;      ///< unit-stride access (prefetcher-friendly)
  std::uint64_t mem_addr = 0;  ///< loads/stores
  bpu::BranchRecord branch;    ///< valid when kind == kBranch
};

/// SoA view of a run of instructions. Element i of every per-instruction
/// array describes the same instruction; branch payloads are compacted into
/// `branches`, indexed through the `branch_before` prefix count, so the
/// cores' branch-window precompute can walk them contiguously without
/// touching the non-branch instructions at all.
struct InstrBlock {
  std::vector<std::uint8_t> kind;  ///< InstrRecord::Kind values
  std::vector<std::uint8_t> dst;
  std::vector<std::uint8_t> src1;
  std::vector<std::uint8_t> src2;
  std::vector<std::uint8_t> streaming;
  std::vector<std::uint64_t> mem_addr;
  /// branch_before[i] = number of branches among instructions [0, i). For a
  /// branch instruction i its payload is branches[branch_before[i]]; for a
  /// range [lo, hi) the payloads are branches[branch_before[lo] ..
  /// branch_count_through(hi)).
  std::vector<std::uint32_t> branch_before;
  std::vector<bpu::BranchRecord> branches;  ///< compacted branch payloads

  [[nodiscard]] std::size_t size() const noexcept { return kind.size(); }
  [[nodiscard]] bool empty() const noexcept { return kind.empty(); }

  void clear() noexcept {
    kind.clear();
    dst.clear();
    src1.clear();
    src2.clear();
    streaming.clear();
    mem_addr.clear();
    branch_before.clear();
    branches.clear();
  }

  void reserve(std::size_t n) {
    kind.reserve(n);
    dst.reserve(n);
    src1.reserve(n);
    src2.reserve(n);
    streaming.reserve(n);
    mem_addr.reserve(n);
    branch_before.reserve(n);
    // Estimate for the compacted payloads (workload branch densities sit
    // near 1-in-5); whole-run pregeneration would otherwise copy tens of
    // MB of BranchRecords through doubling growth.
    branches.reserve(n / 4);
  }

  void push_back(const InstrRecord& r) {
    kind.push_back(static_cast<std::uint8_t>(r.kind));
    dst.push_back(r.dst);
    src1.push_back(r.src1);
    src2.push_back(r.src2);
    streaming.push_back(r.streaming ? 1 : 0);
    mem_addr.push_back(r.mem_addr);
    branch_before.push_back(static_cast<std::uint32_t>(branches.size()));
    if (r.kind == InstrRecord::Kind::kBranch) branches.push_back(r.branch);
  }

  [[nodiscard]] bool is_branch(std::size_t i) const noexcept {
    return static_cast<InstrRecord::Kind>(kind[i]) == InstrRecord::Kind::kBranch;
  }

  /// Branch payload of instruction i (which must be a branch).
  [[nodiscard]] const bpu::BranchRecord& branch(std::size_t i) const noexcept {
    assert(is_branch(i));
    return branches[branch_before[i]];
  }

  /// Number of branches among instructions [0, end).
  [[nodiscard]] std::size_t branch_count_through(std::size_t end) const noexcept {
    if (end == 0) return 0;
    return branch_before[end - 1] + (is_branch(end - 1) ? 1 : 0);
  }

  /// Reassemble the AoS record (interface-path consumers).
  [[nodiscard]] InstrRecord record(std::size_t i) const noexcept {
    InstrRecord r;
    r.kind = static_cast<InstrRecord::Kind>(kind[i]);
    r.dst = dst[i];
    r.src1 = src1[i];
    r.src2 = src2[i];
    r.streaming = streaming[i] != 0;
    r.mem_addr = mem_addr[i];
    if (r.kind == InstrRecord::Kind::kBranch) r.branch = branches[branch_before[i]];
    return r;
  }
};

class InstrStream {
 public:
  virtual ~InstrStream() = default;
  virtual bool next(InstrRecord& out) = 0;
  virtual void reset() = 0;

  /// Refill `out` with up to `limit` instructions (SoA). Returns the number
  /// produced; 0 means end of stream. The default amortizes the virtual
  /// dispatch over one call per block; generators fill the arrays directly.
  virtual std::size_t next_block(InstrBlock& out, std::size_t limit) {
    out.clear();
    InstrRecord r;
    while (out.size() < limit && next(r)) out.push_back(r);
    return out.size();
  }

  /// Zero-copy fast path: expose up to `limit` already-materialized
  /// instructions as [start, start + n) of the returned block and advance
  /// past them. Returns nullptr (n = 0) when the stream has no contiguous
  /// SoA backing (on-the-fly generators) — callers fall back to next_block.
  /// The pointer stays valid until the next stream mutation.
  virtual const InstrBlock* borrow_block(std::size_t limit, std::size_t& start,
                                         std::size_t& n) {
    (void)limit;
    start = 0;
    n = 0;
    return nullptr;
  }

  /// True when borrow_block() serves from materialized storage — the signal
  /// the OoO cores use to route every engine type (not just batch-capable
  /// BPUs) through the zero-copy window fetch.
  [[nodiscard]] virtual bool contiguous() const noexcept { return false; }
};

/// Statistical basic-block expansion around a branch stream.
class SyntheticInstrGenerator final : public InstrStream {
 public:
  explicit SyntheticInstrGenerator(const WorkloadProfile& profile,
                                   std::uint64_t seed_override = 0)
      : profile_(profile),
        branches_(profile, seed_override),
        rng_((seed_override ? seed_override : profile.seed) ^ 0x1257ULL) {}

  bool next(InstrRecord& out) override { return produce(out); }

  /// Block fill: the identical per-record sequence (same RNG draws in the
  /// same order) written straight into the SoA arrays — one virtual call
  /// per block, no per-record dispatch.
  std::size_t next_block(InstrBlock& out, std::size_t limit) override {
    out.clear();
    InstrRecord r;
    while (out.size() < limit && produce(r)) out.push_back(r);
    return out.size();
  }

  void reset() override {
    branches_.reset();
    rng_ = util::Xoshiro256(profile_.seed ^ 0x1257ULL);
    block_remaining_ = 0;
    pending_branch_ = false;
    stream_ptr_ = 0;
    last_dst_ = 1;
  }

  [[nodiscard]] const WorkloadProfile& profile() const noexcept { return profile_; }

 private:
  bool produce(InstrRecord& out) {
    if (block_remaining_ == 0) {
      // Emit the branch ending the previous block, then size the next one.
      if (pending_branch_) {
        out = InstrRecord{};
        out.kind = InstrRecord::Kind::kBranch;
        out.branch = branch_;
        pending_branch_ = false;
        return true;
      }
      branches_.next(branch_);
      pending_branch_ = true;
      // Geometric block length with mean 1/density - 1 (>= 1).
      const double mean =
          std::max(1.0, 1.0 / std::max(0.01, profile_.branch_density) - 1.0);
      block_remaining_ = 1 + static_cast<unsigned>(-mean * std::log(1.0 - rng_.uniform()));
      if (block_remaining_ > 64) block_remaining_ = 64;
      // Dependency chains break at block boundaries: loop iterations and
      // separate blocks are mostly independent work (the source of ILP and
      // memory-level parallelism in real code).
      in_block_chain_ = false;
    }
    --block_remaining_;
    out = make_instr();
    return true;
  }

  InstrRecord make_instr() {
    InstrRecord r;
    const double u = rng_.uniform();
    double acc = profile_.load_frac;
    if (u < acc) {
      r.kind = InstrRecord::Kind::kLoad;
      data_address(r);
    } else if (u < (acc += profile_.store_frac)) {
      r.kind = InstrRecord::Kind::kStore;
      data_address(r);
    } else if (u < (acc += profile_.fp_frac)) {
      r.kind = InstrRecord::Kind::kFp;
    } else if (u < (acc += profile_.mul_frac)) {
      r.kind = InstrRecord::Kind::kMul;
    } else if (u < acc + 0.002) {
      r.kind = InstrRecord::Kind::kDiv;
    } else {
      r.kind = InstrRecord::Kind::kAlu;
    }
    // Register assignment: rotating destinations. With probability
    // `dep_chain` the first source is the previous destination (a serial
    // chain); otherwise operands are frequently already available
    // (constants, loop invariants, registers written long ago) — that
    // sparsity is what exposes ILP and memory-level parallelism.
    r.dst = static_cast<std::uint8_t>(1 + (last_dst_ % 31));
    if (in_block_chain_ && rng_.chance(profile_.dep_chain)) {
      r.src1 = last_dst_;  // serial chain within the current block
    } else if (rng_.chance(0.2)) {
      r.src1 = static_cast<std::uint8_t>(1 + rng_.below(31));
    }
    if (rng_.chance(0.15)) {
      r.src2 = static_cast<std::uint8_t>(1 + rng_.below(31));
    }
    last_dst_ = r.dst;
    ++last_dst_;
    in_block_chain_ = true;
    return r;
  }

  void data_address(InstrRecord& r) {
    const std::uint64_t ws_bytes = std::uint64_t{profile_.working_set_kb} * 1024;
    const std::uint64_t heap = 0x0000'7000'0000ULL;
    if (rng_.chance(profile_.stream_frac)) {
      stream_ptr_ = (stream_ptr_ + 8) % ws_bytes;  // unit-stride stream
      r.mem_addr = heap + stream_ptr_;
      r.streaming = true;
      return;
    }
    // Non-streaming accesses are still locality-skewed: most land in a hot
    // region (stack frames, hot nodes); the rest roam the full working set.
    const std::uint64_t hot_bytes =
        std::min<std::uint64_t>(ws_bytes, 512 * 1024);
    const std::uint64_t span = rng_.chance(0.8) ? hot_bytes : ws_bytes;
    r.mem_addr = heap + (rng_.below(span) & ~std::uint64_t{7});
  }

  WorkloadProfile profile_;
  SyntheticWorkloadGenerator branches_;
  util::Xoshiro256 rng_;
  unsigned block_remaining_ = 0;
  bool pending_branch_ = false;
  bool in_block_chain_ = false;
  bpu::BranchRecord branch_;
  std::uint64_t stream_ptr_ = 0;
  std::uint8_t last_dst_ = 1;
};

}  // namespace stbpu::trace
